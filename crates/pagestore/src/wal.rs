//! An ARIES-style write-ahead log for the baseline engines.
//!
//! Unlike REWIND's recoverable in-NVM log structure, this is the classic
//! design the paper contrasts against: log records are built in volatile
//! in-memory buffers and pushed to persistent storage (a [`Pmfs`] region)
//! when a transaction commits or the buffer fills. Forcing the log is a
//! bulk byte write followed by a sync — cheap per byte, but the records
//! themselves are heavyweight (the BerkeleyDB- and Shore-MT-like
//! personalities log whole 4 KiB page images).
//!
//! The log can be split into `P` partitions (Shore-MT's distributed log): a
//! transaction's records always go to the partition chosen by hashing its
//! transaction id, which reduces contention on the log latch.

use crate::pmfs::Pmfs;
use crate::Result;
use parking_lot::Mutex;
use rewind_nvm::NvmPool;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Kind of a WAL record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalRecordKind {
    /// A logical or physical update.
    Update,
    /// Transaction committed.
    Commit,
    /// Transaction aborted (rollback completed).
    Abort,
    /// Compensation record written while undoing an update.
    Clr,
    /// Checkpoint marker.
    Checkpoint,
}

impl WalRecordKind {
    fn to_u8(self) -> u8 {
        match self {
            WalRecordKind::Update => 1,
            WalRecordKind::Commit => 2,
            WalRecordKind::Abort => 3,
            WalRecordKind::Clr => 4,
            WalRecordKind::Checkpoint => 5,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => WalRecordKind::Update,
            2 => WalRecordKind::Commit,
            3 => WalRecordKind::Abort,
            4 => WalRecordKind::Clr,
            5 => WalRecordKind::Checkpoint,
            _ => return None,
        })
    }
}

/// One WAL record. Logical logging fills `key`/`old_value`/`new_value`;
/// physical (page-image) logging also carries before/after images of the
/// whole page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number.
    pub lsn: u64,
    /// Owning transaction.
    pub txid: u64,
    /// Record kind.
    pub kind: WalRecordKind,
    /// Page the update touched.
    pub page_id: u64,
    /// Key affected (logical logging).
    pub key: u64,
    /// Before value (logical logging), empty if none.
    pub old_value: Vec<u8>,
    /// After value (logical logging), empty if none.
    pub new_value: Vec<u8>,
    /// Before image of the page (physical logging), empty if not used.
    pub before_image: Vec<u8>,
    /// After image of the page (physical logging), empty if not used.
    pub after_image: Vec<u8>,
}

impl WalRecord {
    /// A minimal control record (commit/abort/checkpoint).
    pub fn control(lsn: u64, txid: u64, kind: WalRecordKind) -> Self {
        WalRecord {
            lsn,
            txid,
            kind,
            page_id: 0,
            key: 0,
            old_value: Vec::new(),
            new_value: Vec::new(),
            before_image: Vec::new(),
            after_image: Vec::new(),
        }
    }

    fn serialize(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&0u32.to_le_bytes()); // length placeholder
        out.extend_from_slice(&self.lsn.to_le_bytes());
        out.extend_from_slice(&self.txid.to_le_bytes());
        out.push(self.kind.to_u8());
        out.extend_from_slice(&self.page_id.to_le_bytes());
        out.extend_from_slice(&self.key.to_le_bytes());
        for field in [
            &self.old_value,
            &self.new_value,
            &self.before_image,
            &self.after_image,
        ] {
            out.extend_from_slice(&(field.len() as u32).to_le_bytes());
            out.extend_from_slice(field);
        }
        let len = (out.len() - start) as u32;
        out[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn deserialize(buf: &[u8]) -> Option<(WalRecord, usize)> {
        if buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        if len < 41 || len > buf.len() {
            return None;
        }
        let body = &buf[..len];
        let mut off = 4;
        let read_u64 = |o: &mut usize| {
            let v = u64::from_le_bytes(body[*o..*o + 8].try_into().unwrap());
            *o += 8;
            v
        };
        let lsn = read_u64(&mut off);
        let txid = read_u64(&mut off);
        let kind = WalRecordKind::from_u8(body[off])?;
        off += 1;
        let page_id = read_u64(&mut off);
        let key = read_u64(&mut off);
        let mut fields = Vec::with_capacity(4);
        for _ in 0..4 {
            if off + 4 > len {
                return None;
            }
            let flen = u32::from_le_bytes(body[off..off + 4].try_into().unwrap()) as usize;
            off += 4;
            if off + flen > len {
                return None;
            }
            fields.push(body[off..off + flen].to_vec());
            off += flen;
        }
        let after_image = fields.pop().unwrap();
        let before_image = fields.pop().unwrap();
        let new_value = fields.pop().unwrap();
        let old_value = fields.pop().unwrap();
        Some((
            WalRecord {
                lsn,
                txid,
                kind,
                page_id,
                key,
                old_value,
                new_value,
                before_image,
                after_image,
            },
            len,
        ))
    }
}

struct Partition {
    /// In-memory log buffer awaiting a force.
    buffer: Vec<u8>,
    /// Persistent append offset within this partition's PMFS region.
    durable_offset: usize,
}

/// The write-ahead log manager.
pub struct WalManager {
    pmfs: Pmfs,
    partitions: Vec<Mutex<Partition>>,
    partition_capacity: usize,
    next_lsn: AtomicU64,
    forces: AtomicU64,
    bytes_logged: AtomicU64,
}

impl std::fmt::Debug for WalManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalManager")
            .field("partitions", &self.partitions.len())
            .field("bytes_logged", &self.bytes_logged.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl WalManager {
    /// Creates a log of `capacity` bytes split into `partitions` regions.
    pub fn create(pool: Arc<NvmPool>, capacity: usize, partitions: usize) -> Result<Self> {
        let partitions = partitions.max(1);
        let pmfs = Pmfs::create(pool, capacity)?;
        let partition_capacity = capacity / partitions;
        let parts = (0..partitions)
            .map(|_| {
                Mutex::new(Partition {
                    buffer: Vec::new(),
                    durable_offset: 0,
                })
            })
            .collect();
        Ok(WalManager {
            pmfs,
            partitions: parts,
            partition_capacity,
            next_lsn: AtomicU64::new(1),
            forces: AtomicU64::new(0),
            bytes_logged: AtomicU64::new(0),
        })
    }

    /// Number of partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total bytes appended (buffered or forced).
    pub fn bytes_logged(&self) -> u64 {
        self.bytes_logged.load(Ordering::Relaxed)
    }

    /// Number of log forces performed.
    pub fn forces(&self) -> u64 {
        self.forces.load(Ordering::Relaxed)
    }

    /// Allocates the next LSN.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn.fetch_add(1, Ordering::SeqCst)
    }

    fn partition_of(&self, txid: u64) -> usize {
        (txid as usize) % self.partitions.len()
    }

    /// Appends `record` to its transaction's partition buffer. The record is
    /// not durable until the next force, but — like a real log manager — the
    /// buffer is flushed to storage automatically once it exceeds a fixed
    /// size, so memory use stays bounded even for huge transactions.
    pub fn append(&self, record: &WalRecord) {
        const LOG_BUFFER_FLUSH: usize = 256 * 1024;
        let p = self.partition_of(record.txid);
        let mut part = self.partitions[p].lock();
        let before = part.buffer.len();
        record.serialize(&mut part.buffer);
        let added = part.buffer.len() - before;
        self.bytes_logged.fetch_add(added as u64, Ordering::Relaxed);
        if part.buffer.len() >= LOG_BUFFER_FLUSH {
            self.force_locked(p, &mut part);
        }
    }

    /// Forces the partition holding `txid`'s records to persistent storage
    /// (the commit-time log force).
    pub fn force(&self, txid: u64) {
        let p = self.partition_of(txid);
        let mut part = self.partitions[p].lock();
        self.force_locked(p, &mut part);
    }

    fn force_locked(&self, p: usize, part: &mut Partition) {
        if part.buffer.is_empty() {
            return;
        }
        let base = p * self.partition_capacity;
        let off = base + part.durable_offset;
        let buffer = std::mem::take(&mut part.buffer);
        assert!(
            part.durable_offset + buffer.len() <= self.partition_capacity,
            "WAL partition overflow: increase the log capacity or checkpoint more often"
        );
        self.pmfs.write_at(off, &buffer);
        self.pmfs.sync_range(off, buffer.len());
        part.durable_offset += buffer.len();
        self.forces.fetch_add(1, Ordering::Relaxed);
    }

    /// Forces every partition.
    pub fn force_all(&self) {
        for p in 0..self.partitions.len() {
            // Any txid mapping to partition p works.
            self.force(p as u64);
        }
    }

    /// Reads every durable record, across all partitions, ordered by LSN.
    /// This is what recovery scans (buffered-but-unforced records are, by
    /// definition, lost in a crash).
    pub fn durable_records(&self) -> Vec<WalRecord> {
        let mut out = Vec::new();
        for (p, part) in self.partitions.iter().enumerate() {
            let part = part.lock();
            let base = p * self.partition_capacity;
            let mut region = vec![0u8; part.durable_offset.max(self.scan_limit(p))];
            if region.is_empty() {
                continue;
            }
            self.pmfs.read_at(base, &mut region);
            let mut off = 0;
            while let Some((rec, used)) = WalRecord::deserialize(&region[off..]) {
                out.push(rec);
                off += used;
            }
        }
        out.sort_by_key(|r| r.lsn);
        out
    }

    /// After a crash the volatile `durable_offset` is zero; scanning must go
    /// by record framing instead. We simply scan the whole partition region
    /// (records are length-prefixed and a zero length terminates the scan).
    fn scan_limit(&self, _p: usize) -> usize {
        self.partition_capacity
    }

    /// Truncates the whole log: discards buffered records, resets every
    /// partition's append offset and invalidates the old on-storage records.
    /// Callers must only do this when every record is reflected in durable
    /// data pages (i.e. right after flushing the buffer pool with no
    /// recovery-relevant transactions outstanding).
    pub fn truncate(&self) {
        for (p, part) in self.partitions.iter().enumerate() {
            let mut part = part.lock();
            part.buffer.clear();
            part.durable_offset = 0;
            // A zero length prefix terminates any future scan immediately.
            let base = p * self.partition_capacity;
            self.pmfs.write_at(base, &[0u8; 8]);
            self.pmfs.sync_range(base, 8);
        }
    }

    /// Capacity of a single partition in bytes.
    pub fn partition_capacity(&self) -> usize {
        self.partition_capacity
    }

    /// Bytes already durable in the fullest partition (used to decide when a
    /// checkpoint must truncate the log).
    pub fn max_partition_fill(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| {
                let p = p.lock();
                p.durable_offset + p.buffer.len()
            })
            .max()
            .unwrap_or(0)
    }

    /// Resets the volatile append offsets after a simulated crash so new
    /// records are appended after the surviving ones.
    pub fn reattach(&self) {
        for (p, part) in self.partitions.iter().enumerate() {
            let mut part = part.lock();
            part.buffer.clear();
            let base = p * self.partition_capacity;
            let mut region = vec![0u8; self.partition_capacity];
            self.pmfs.read_at(base, &mut region);
            let mut off = 0;
            while let Some((_, used)) = WalRecord::deserialize(&region[off..]) {
                off += used;
            }
            part.durable_offset = off;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_nvm::PoolConfig;

    fn record(lsn: u64, txid: u64, kind: WalRecordKind) -> WalRecord {
        WalRecord {
            lsn,
            txid,
            kind,
            page_id: 3,
            key: 42,
            old_value: vec![1, 2, 3],
            new_value: vec![4, 5, 6, 7],
            before_image: Vec::new(),
            after_image: Vec::new(),
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let rec = record(9, 2, WalRecordKind::Update);
        let mut buf = Vec::new();
        rec.serialize(&mut buf);
        let (back, used) = WalRecord::deserialize(&buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(used, buf.len());
        // Garbage does not decode.
        assert!(WalRecord::deserialize(&[0u8; 16]).is_none());
    }

    #[test]
    fn unforced_records_are_lost_forced_ones_survive() {
        let pool = NvmPool::new(PoolConfig::small());
        let wal = WalManager::create(Arc::clone(&pool), 256 * 1024, 1).unwrap();
        wal.append(&record(wal.next_lsn(), 1, WalRecordKind::Update));
        wal.append(&record(wal.next_lsn(), 1, WalRecordKind::Commit));
        wal.force(1);
        wal.append(&record(wal.next_lsn(), 2, WalRecordKind::Update));
        // txid 2 never forced: lost at the crash.
        pool.power_cycle();
        wal.reattach();
        let recs = wal.durable_records();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.txid == 1));
        // Appending after re-attach lands after the surviving records.
        wal.append(&record(wal.next_lsn(), 3, WalRecordKind::Update));
        wal.force(3);
        assert_eq!(wal.durable_records().len(), 3);
    }

    #[test]
    fn partitions_separate_transactions_and_merge_on_scan() {
        let pool = NvmPool::new(PoolConfig::small());
        let wal = WalManager::create(Arc::clone(&pool), 256 * 1024, 4).unwrap();
        assert_eq!(wal.partition_count(), 4);
        for txid in 0..8u64 {
            wal.append(&record(wal.next_lsn(), txid, WalRecordKind::Update));
            wal.force(txid);
        }
        let recs = wal.durable_records();
        assert_eq!(recs.len(), 8);
        let lsns: Vec<u64> = recs.iter().map(|r| r.lsn).collect();
        let mut sorted = lsns.clone();
        sorted.sort_unstable();
        assert_eq!(lsns, sorted, "scan must merge partitions in LSN order");
        assert_eq!(wal.forces(), 8);
        assert!(wal.bytes_logged() > 0);
    }
}
