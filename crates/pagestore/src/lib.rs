//! # rewind-pagestore — DBMS-style baseline storage engines
//!
//! The REWIND paper compares against three block/page-oriented systems:
//! Stasis (a transactional storage manager with data-structure-specific,
//! logical logging), BerkeleyDB (a B-tree storage engine with page-level
//! physical logging) and Shore-MT (a research storage manager with
//! per-core partitioned logs), all running over PMFS, a byte-addressable
//! kernel file system for persistent memory.
//!
//! None of those codebases is reproducible here, so this crate builds the
//! class of system they represent from scratch, over the same simulated NVM
//! substrate REWIND uses, so the comparison stays apples-to-apples:
//!
//! * [`Pmfs`] — a byte-addressable "file" in the NVM pool; writes are charged
//!   NVM latency (the paper charges the baselines only for user-data writes
//!   to PMFS, and so do we).
//! * [`WalManager`] — an ARIES-style write-ahead log with in-memory log
//!   buffers, commit-time forces and optional partitioning (Shore-MT's
//!   distributed log).
//! * [`PagedFile`] — fixed-size (4 KiB) pages over PMFS with whole-page
//!   writes, the unit of I/O these engines think in.
//! * [`KvStore`] — a transactional key/value store (hashed page directory
//!   with bucket-chain overflow pages) with a buffer pool, steal/no-force
//!   page management, rollback and ARIES recovery. Its
//!   [`Personality`] knob reproduces the distinguishing behaviour of each
//!   baseline: logical record logging (Stasis-like), physical page-image
//!   logging (BerkeleyDB-like), or page-image logging with a partitioned log
//!   and in-memory undo buffers (Shore-MT-like).
//!
//! The point is not to re-implement those systems faithfully, but to
//! reproduce the *cost structure* that makes REWIND one to two orders of
//! magnitude faster: page-granular I/O, buffer-pool indirection, heavyweight
//! log records and commit-time forces.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod kv;
pub mod pmfs;
pub mod wal;

pub use kv::{KvStats, KvStore, Personality};
pub use pmfs::{PagedFile, Pmfs, PAGE_SIZE};
pub use wal::{WalManager, WalRecord, WalRecordKind};

/// Errors raised by the baseline engines (re-used from the NVM substrate).
pub type Result<T> = std::result::Result<T, rewind_nvm::NvmError>;
