//! A transactional page-based key/value store — the baseline engine.
//!
//! The store keeps fixed 32-byte values under `u64` keys in a hashed page
//! directory (bucket pages with overflow chains) over a [`PagedFile`], with a
//! buffer pool in volatile memory, a [`WalManager`] write-ahead log, and
//! ARIES-style commit/rollback/recovery. Point operations (insert, delete,
//! update, lookup) are exactly what the paper's B+-tree workloads exercise,
//! and the cost profile is that of a block-oriented storage manager: every
//! update dirties a 4 KiB page, logs a heavyweight record and pays a log
//! force at commit.
//!
//! The [`Personality`] parameter reproduces the distinguishing behaviour of
//! the three systems the paper compares against:
//!
//! * [`Personality::StasisLike`] — logical (record-level) logging, log-driven
//!   rollback that replays inverse operations through the access method;
//! * [`Personality::BerkeleyDbLike`] — physical page-image logging (after
//!   image per update) and log-driven rollback;
//! * [`Personality::ShoreMtLike`] — physical before+after page-image logging,
//!   a partitioned ("distributed") log, and in-memory undo buffers that make
//!   rollback cheap.
//!
//! All personalities serialize data access behind one engine latch — the
//! coarse-grained latching that REWIND's fine-grained log latching is
//! contrasted with in the multithreaded experiment.

use crate::pmfs::{PagedFile, PAGE_SIZE};
use crate::wal::{WalManager, WalRecord, WalRecordKind};
use crate::Result;
use parking_lot::Mutex;
use rewind_nvm::NvmPool;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed value size (matches the paper's 32-byte records).
pub const VALUE_SIZE: usize = 32;
/// A stored value.
pub type KvValue = [u8; VALUE_SIZE];

const ENTRY_SIZE: usize = 8 + VALUE_SIZE;
const PAGE_HEADER: usize = 16; // next_overflow (u64) + nentries (u64)
const ENTRIES_PER_PAGE: usize = (PAGE_SIZE - PAGE_HEADER) / ENTRY_SIZE;
const NO_PAGE: u64 = u64::MAX;

/// Which baseline system this engine imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Stasis: data-structure-specific, logical logging.
    StasisLike,
    /// BerkeleyDB: page-level physical logging, coarse latching.
    BerkeleyDbLike,
    /// Shore-MT: page-level physical logging, partitioned log, undo buffers.
    ShoreMtLike,
}

impl Personality {
    /// Log partitions used by this personality.
    pub fn log_partitions(self) -> usize {
        match self {
            Personality::ShoreMtLike => 4,
            _ => 1,
        }
    }

    /// Per-operation CPU overhead (ns) of the engine's software stack:
    /// buffer-pool pin/unpin, latching, lock-manager bookkeeping, LSN
    /// tracking, marshalling through the storage-manager API. These stacks
    /// cannot be rebuilt here, so the constants are calibrated from the
    /// paper's own measurements (Figure 7 right: at 100 % updates the
    /// baselines spend tens of microseconds of CPU per operation on top of
    /// their I/O), while all I/O costs — page writes, log bytes, log forces —
    /// are simulated explicitly. See DESIGN.md ("Substitutions").
    fn op_overhead_ns(self) -> u64 {
        match self {
            Personality::StasisLike => 30_000,
            Personality::BerkeleyDbLike => 40_000,
            Personality::ShoreMtLike => 80_000,
        }
    }
}

/// Counters exposed for tests and the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// Transactions committed.
    pub committed: u64,
    /// Transactions rolled back.
    pub rolled_back: u64,
    /// Point operations executed.
    pub operations: u64,
    /// Pages written back to the paged file.
    pub pages_written: u64,
    /// Log bytes appended.
    pub log_bytes: u64,
    /// Recoveries performed.
    pub recoveries: u64,
}

struct Frame {
    data: Vec<u8>,
    dirty: bool,
}

struct TxState {
    /// Undo information kept in memory (always collected; how rollback uses
    /// it depends on the personality).
    undo: Vec<WalRecord>,
}

struct Inner {
    /// Buffer pool: page id -> frame.
    frames: HashMap<u64, Frame>,
    /// Directory: bucket index -> first page id of the chain.
    directory: Vec<u64>,
    /// Active transactions.
    active: HashMap<u64, TxState>,
    stats: KvStats,
}

/// The baseline transactional key/value store.
pub struct KvStore {
    pool: Arc<NvmPool>,
    personality: Personality,
    pages: PagedFile,
    wal: WalManager,
    buffer_capacity: usize,
    inner: Mutex<Inner>,
    next_txid: AtomicU64,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("personality", &self.personality)
            .finish_non_exhaustive()
    }
}

impl KvStore {
    /// Creates a store with `buckets` directory buckets, room for `max_pages`
    /// data pages, a log of `log_capacity` bytes and a buffer pool of
    /// `buffer_pages` frames.
    pub fn create(
        pool: Arc<NvmPool>,
        personality: Personality,
        buckets: usize,
        max_pages: u64,
        log_capacity: usize,
        buffer_pages: usize,
    ) -> Result<Self> {
        let pages = PagedFile::create(Arc::clone(&pool), max_pages)?;
        let wal = WalManager::create(
            Arc::clone(&pool),
            log_capacity,
            personality.log_partitions(),
        )?;
        let mut directory = Vec::with_capacity(buckets);
        for _ in 0..buckets {
            let id = pages.allocate_page()?;
            pages.write_page(id, &Self::empty_page());
            directory.push(id);
        }
        Ok(KvStore {
            pool,
            personality,
            pages,
            wal,
            buffer_capacity: buffer_pages.max(4),
            inner: Mutex::new(Inner {
                frames: HashMap::new(),
                directory,
                active: HashMap::new(),
                stats: KvStats::default(),
            }),
            next_txid: AtomicU64::new(1),
        })
    }

    fn empty_page() -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        p[0..8].copy_from_slice(&NO_PAGE.to_le_bytes());
        p
    }

    /// The personality this store was created with.
    pub fn personality(&self) -> Personality {
        self.personality
    }

    /// A snapshot of the engine counters.
    pub fn stats(&self) -> KvStats {
        let mut s = self.inner.lock().stats;
        s.log_bytes = self.wal.bytes_logged();
        s
    }

    // ------------------------------------------------------------------
    // Page helpers (operate on a buffer-pool frame)
    // ------------------------------------------------------------------

    fn page_next(data: &[u8]) -> u64 {
        u64::from_le_bytes(data[0..8].try_into().unwrap())
    }

    fn page_nentries(data: &[u8]) -> usize {
        u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize
    }

    fn set_page_next(data: &mut [u8], next: u64) {
        data[0..8].copy_from_slice(&next.to_le_bytes());
    }

    fn set_page_nentries(data: &mut [u8], n: usize) {
        data[8..16].copy_from_slice(&(n as u64).to_le_bytes());
    }

    fn entry_key(data: &[u8], idx: usize) -> u64 {
        let off = PAGE_HEADER + idx * ENTRY_SIZE;
        u64::from_le_bytes(data[off..off + 8].try_into().unwrap())
    }

    fn entry_value(data: &[u8], idx: usize) -> KvValue {
        let off = PAGE_HEADER + idx * ENTRY_SIZE + 8;
        data[off..off + VALUE_SIZE].try_into().unwrap()
    }

    fn set_entry(data: &mut [u8], idx: usize, key: u64, value: &KvValue) {
        let off = PAGE_HEADER + idx * ENTRY_SIZE;
        data[off..off + 8].copy_from_slice(&key.to_le_bytes());
        data[off + 8..off + 8 + VALUE_SIZE].copy_from_slice(value);
    }

    fn bucket_of(&self, key: u64, directory_len: usize) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % directory_len
    }

    /// Loads a page into the buffer pool (evicting if needed) and returns a
    /// copy-free mutable handle via the closure.
    fn with_page<R>(&self, inner: &mut Inner, page_id: u64, f: impl FnOnce(&mut Frame) -> R) -> R {
        if !inner.frames.contains_key(&page_id) {
            if inner.frames.len() >= self.buffer_capacity {
                self.evict_one(inner);
            }
            let data = self.pages.read_page(page_id);
            inner.frames.insert(page_id, Frame { data, dirty: false });
        }
        f(inner.frames.get_mut(&page_id).expect("frame just inserted"))
    }

    /// Steal policy: evict some frame; if dirty, force the log first (WAL)
    /// and write the page back.
    fn evict_one(&self, inner: &mut Inner) {
        let victim = inner
            .frames
            .keys()
            .next()
            .copied()
            .expect("eviction called on a non-empty pool");
        let frame = inner.frames.remove(&victim).expect("victim exists");
        if frame.dirty {
            self.wal.force_all();
            self.pages.write_page(victim, &frame.data);
            inner.stats.pages_written += 1;
        }
    }

    /// Writes every dirty frame back (checkpoint / clean shutdown).
    pub fn flush_all_pages(&self) {
        let mut inner = self.inner.lock();
        self.flush_all_pages_locked(&mut inner);
    }

    fn flush_all_pages_locked(&self, inner: &mut Inner) {
        self.wal.force_all();
        let ids: Vec<u64> = inner.frames.keys().copied().collect();
        for id in ids {
            let frame = inner.frames.get_mut(&id).expect("frame exists");
            if frame.dirty {
                self.pages.write_page(id, &frame.data);
                frame.dirty = false;
                inner.stats.pages_written += 1;
            }
        }
    }

    /// Checkpoints the store: flushes every dirty page and, if no transaction
    /// is active, truncates the log (every logged effect is now reflected in
    /// durable pages). Called automatically when a log partition approaches
    /// its capacity, which is how real engines keep their log bounded.
    pub fn checkpoint(&self) {
        let mut inner = self.inner.lock();
        self.checkpoint_locked(&mut inner);
    }

    fn checkpoint_locked(&self, inner: &mut Inner) {
        self.flush_all_pages_locked(inner);
        if inner.active.is_empty() {
            self.wal.truncate();
        }
    }

    /// Truncate the log before a partition overflows. Only safe boundaries
    /// are used: if transactions are active the log is kept (engines would
    /// block the writer instead; the benchmark workloads use short
    /// transactions so the situation does not arise).
    fn maybe_checkpoint_locked(&self, inner: &mut Inner) {
        if self.wal.max_partition_fill() > self.wal.partition_capacity() * 3 / 4 {
            self.checkpoint_locked(inner);
        }
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Starts a transaction.
    pub fn begin(&self) -> u64 {
        let txid = self.next_txid.fetch_add(1, Ordering::SeqCst);
        self.inner
            .lock()
            .active
            .insert(txid, TxState { undo: Vec::new() });
        txid
    }

    /// Commits `txid`: appends a commit record and forces the log.
    pub fn commit(&self, txid: u64) {
        {
            let mut inner = self.inner.lock();
            inner.active.remove(&txid);
            inner.stats.committed += 1;
        }
        self.wal.append(&WalRecord::control(
            self.wal.next_lsn(),
            txid,
            WalRecordKind::Commit,
        ));
        self.wal.force(txid);
        // Keep the log bounded: take a checkpoint when a partition is close
        // to full and no transaction is in flight.
        let mut inner = self.inner.lock();
        self.maybe_checkpoint_locked(&mut inner);
    }

    /// Rolls `txid` back. How expensive this is depends on the personality:
    /// Shore-MT-like replays its in-memory undo buffer; the others force the
    /// log and scan it for the transaction's records before undoing them.
    pub fn rollback(&self, txid: u64) {
        let undo = {
            let mut inner = self.inner.lock();
            inner.stats.rolled_back += 1;
            inner
                .active
                .remove(&txid)
                .map(|t| t.undo)
                .unwrap_or_default()
        };
        // The in-memory undo list is authoritative (it always reflects every
        // update of the transaction, even if a checkpoint truncated the log).
        // The Stasis-/BerkeleyDB-like personalities nevertheless pay for the
        // log-driven rollback they would perform in reality: force the log
        // and scan it for the transaction's records (this is what makes
        // rollback expensive for these engines in Figure 8).
        if self.personality != Personality::ShoreMtLike {
            self.wal.force(txid);
            let _scanned = self
                .wal
                .durable_records()
                .iter()
                .filter(|r| r.txid == txid && r.kind == WalRecordKind::Update)
                .count();
        }
        let records: Vec<WalRecord> = undo;
        {
            let mut inner = self.inner.lock();
            for rec in records.iter().rev() {
                self.undo_record(&mut inner, rec);
                // Logical undo (Stasis) re-runs the inverse operation through
                // the access method, which costs another traversal.
                if self.personality == Personality::StasisLike {
                    self.pool
                        .charge_compute_ns(self.personality.op_overhead_ns());
                }
                self.wal.append(&WalRecord {
                    lsn: self.wal.next_lsn(),
                    kind: WalRecordKind::Clr,
                    ..rec.clone()
                });
            }
        }
        self.wal.append(&WalRecord::control(
            self.wal.next_lsn(),
            txid,
            WalRecordKind::Abort,
        ));
        self.wal.force(txid);
    }

    fn undo_record(&self, inner: &mut Inner, rec: &WalRecord) {
        if !rec.before_image.is_empty() {
            // Physical undo: restore the before image.
            let img = rec.before_image.clone();
            self.with_page(inner, rec.page_id, |frame| {
                frame.data.copy_from_slice(&img);
                frame.dirty = true;
            });
            return;
        }
        // Logical undo.
        let key = rec.key;
        if rec.old_value.is_empty() {
            // The update was an insert: remove the key.
            self.apply_delete(inner, key);
        } else {
            let mut v = [0u8; VALUE_SIZE];
            v.copy_from_slice(&rec.old_value);
            self.apply_upsert(inner, key, &v);
        }
    }

    // ------------------------------------------------------------------
    // Point operations
    // ------------------------------------------------------------------

    /// Looks up `key`.
    pub fn lookup(&self, key: u64) -> Option<KvValue> {
        let mut inner = self.inner.lock();
        let mut page_id = inner.directory[self.bucket_of(key, inner.directory.len())];
        while page_id != NO_PAGE {
            let (found, next) = self.with_page(&mut inner, page_id, |frame| {
                let n = Self::page_nentries(&frame.data);
                for i in 0..n {
                    if Self::entry_key(&frame.data, i) == key {
                        return (Some(Self::entry_value(&frame.data, i)), NO_PAGE);
                    }
                }
                (None, Self::page_next(&frame.data))
            });
            if found.is_some() {
                return found;
            }
            page_id = next;
        }
        None
    }

    /// Inserts or overwrites `key` inside transaction `txid`.
    pub fn insert(&self, txid: u64, key: u64, value: KvValue) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.stats.operations += 1;
        self.pool
            .charge_compute_ns(self.personality.op_overhead_ns());
        let old = self.lookup_locked(&mut inner, key);
        let page_id = self.apply_upsert(&mut inner, key, &value);
        self.log_update(&mut inner, txid, page_id, key, old, Some(value));
        Ok(())
    }

    /// Deletes `key` inside transaction `txid`. Returns `true` if present.
    pub fn delete(&self, txid: u64, key: u64) -> Result<bool> {
        let mut inner = self.inner.lock();
        inner.stats.operations += 1;
        self.pool
            .charge_compute_ns(self.personality.op_overhead_ns());
        let old = self.lookup_locked(&mut inner, key);
        if old.is_none() {
            return Ok(false);
        }
        let page_id = self.apply_delete(&mut inner, key);
        self.log_update(&mut inner, txid, page_id, key, old, None);
        Ok(true)
    }

    fn lookup_locked(&self, inner: &mut Inner, key: u64) -> Option<KvValue> {
        let mut page_id = inner.directory[self.bucket_of(key, inner.directory.len())];
        while page_id != NO_PAGE {
            let (found, next) = self.with_page(inner, page_id, |frame| {
                let n = Self::page_nentries(&frame.data);
                for i in 0..n {
                    if Self::entry_key(&frame.data, i) == key {
                        return (Some(Self::entry_value(&frame.data, i)), NO_PAGE);
                    }
                }
                (None, Self::page_next(&frame.data))
            });
            if found.is_some() {
                return found;
            }
            page_id = next;
        }
        None
    }

    /// Inserts/overwrites without logging; returns the page modified.
    fn apply_upsert(&self, inner: &mut Inner, key: u64, value: &KvValue) -> u64 {
        let mut page_id = inner.directory[self.bucket_of(key, inner.directory.len())];
        loop {
            enum Outcome {
                Done,
                Full,
                Next(u64),
            }
            let outcome = self.with_page(inner, page_id, |frame| {
                let n = Self::page_nentries(&frame.data);
                for i in 0..n {
                    if Self::entry_key(&frame.data, i) == key {
                        Self::set_entry(&mut frame.data, i, key, value);
                        frame.dirty = true;
                        return Outcome::Done;
                    }
                }
                let next = Self::page_next(&frame.data);
                if next != NO_PAGE {
                    return Outcome::Next(next);
                }
                if n < ENTRIES_PER_PAGE {
                    Self::set_entry(&mut frame.data, n, key, value);
                    Self::set_page_nentries(&mut frame.data, n + 1);
                    frame.dirty = true;
                    Outcome::Done
                } else {
                    Outcome::Full
                }
            });
            match outcome {
                Outcome::Done => return page_id,
                Outcome::Next(next) => page_id = next,
                Outcome::Full => {
                    // Chain a fresh overflow page.
                    let new_page = self.pages.allocate_page().expect("out of data pages");
                    self.pages.write_page(new_page, &Self::empty_page());
                    self.with_page(inner, page_id, |frame| {
                        Self::set_page_next(&mut frame.data, new_page);
                        frame.dirty = true;
                    });
                    page_id = new_page;
                }
            }
        }
    }

    /// Deletes without logging; returns the page modified.
    fn apply_delete(&self, inner: &mut Inner, key: u64) -> u64 {
        let mut page_id = inner.directory[self.bucket_of(key, inner.directory.len())];
        while page_id != NO_PAGE {
            let (done, next) = self.with_page(inner, page_id, |frame| {
                let n = Self::page_nentries(&frame.data);
                for i in 0..n {
                    if Self::entry_key(&frame.data, i) == key {
                        // Move the last entry into the hole.
                        if i + 1 < n {
                            let lk = Self::entry_key(&frame.data, n - 1);
                            let lv = Self::entry_value(&frame.data, n - 1);
                            Self::set_entry(&mut frame.data, i, lk, &lv);
                        }
                        Self::set_page_nentries(&mut frame.data, n - 1);
                        frame.dirty = true;
                        return (true, NO_PAGE);
                    }
                }
                (false, Self::page_next(&frame.data))
            });
            if done {
                return page_id;
            }
            page_id = next;
        }
        page_id
    }

    fn log_update(
        &self,
        inner: &mut Inner,
        txid: u64,
        page_id: u64,
        key: u64,
        old: Option<KvValue>,
        new: Option<KvValue>,
    ) {
        let physical = self.personality != Personality::StasisLike;
        let after_image = if physical {
            self.with_page(inner, page_id, |frame| frame.data.clone())
        } else {
            Vec::new()
        };
        let before_image = if self.personality == Personality::ShoreMtLike {
            // Shore-MT-like logs before images too (heavier logging).
            after_image.clone()
        } else {
            Vec::new()
        };
        let rec = WalRecord {
            lsn: self.wal.next_lsn(),
            txid,
            kind: WalRecordKind::Update,
            page_id,
            key,
            old_value: old.map(|v| v.to_vec()).unwrap_or_default(),
            new_value: new.map(|v| v.to_vec()).unwrap_or_default(),
            before_image,
            after_image,
        };
        if let Some(tx) = inner.active.get_mut(&txid) {
            // The undo buffer keeps the logical images only (that is all
            // rollback needs); the page images live in the WAL.
            tx.undo.push(WalRecord {
                before_image: Vec::new(),
                after_image: Vec::new(),
                ..rec.clone()
            });
        }
        self.wal.append(&rec);
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// ARIES-style restart recovery: re-attaches the log, redoes the effects
    /// of committed transactions and undoes everything else. Returns the
    /// number of log records processed.
    pub fn recover(&self) -> u64 {
        self.wal.reattach();
        let records = self.wal.durable_records();
        let committed: std::collections::HashSet<u64> = records
            .iter()
            .filter(|r| r.kind == WalRecordKind::Commit)
            .map(|r| r.txid)
            .collect();
        let mut inner = self.inner.lock();
        inner.frames.clear();
        inner.active.clear();
        inner.stats.recoveries += 1;
        let mut processed = 0;
        // Redo committed work in LSN order.
        for rec in &records {
            if rec.kind != WalRecordKind::Update || !committed.contains(&rec.txid) {
                continue;
            }
            processed += 1;
            if !rec.after_image.is_empty() {
                let img = rec.after_image.clone();
                self.with_page(&mut inner, rec.page_id, |frame| {
                    frame.data.copy_from_slice(&img);
                    frame.dirty = true;
                });
            } else if rec.new_value.is_empty() {
                self.apply_delete(&mut inner, rec.key);
            } else {
                let mut v = [0u8; VALUE_SIZE];
                v.copy_from_slice(&rec.new_value);
                self.apply_upsert(&mut inner, rec.key, &v);
            }
        }
        // Undo losers, newest first.
        for rec in records.iter().rev() {
            if rec.kind != WalRecordKind::Update || committed.contains(&rec.txid) {
                continue;
            }
            processed += 1;
            self.undo_record(&mut inner, rec);
        }
        drop(inner);
        self.flush_all_pages();
        processed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_nvm::{CostModel, PoolConfig};

    fn value(seed: u8) -> KvValue {
        [seed; VALUE_SIZE]
    }

    fn store(personality: Personality) -> (Arc<NvmPool>, KvStore) {
        let pool = NvmPool::new(PoolConfig::with_capacity(128 << 20).cost(CostModel::paper()));
        let kv = KvStore::create(Arc::clone(&pool), personality, 64, 4096, 64 << 20, 128).unwrap();
        (pool, kv)
    }

    fn all_personalities() -> [Personality; 3] {
        [
            Personality::StasisLike,
            Personality::BerkeleyDbLike,
            Personality::ShoreMtLike,
        ]
    }

    #[test]
    fn insert_lookup_delete_roundtrip() {
        for p in all_personalities() {
            let (_pool, kv) = store(p);
            let tx = kv.begin();
            for k in 0..500u64 {
                kv.insert(tx, k, value((k % 251) as u8)).unwrap();
            }
            kv.commit(tx);
            for k in 0..500u64 {
                assert_eq!(kv.lookup(k), Some(value((k % 251) as u8)), "{p:?} key {k}");
            }
            assert!(kv.lookup(10_000).is_none());
            let tx = kv.begin();
            for k in (0..500u64).step_by(2) {
                assert!(kv.delete(tx, k).unwrap());
            }
            assert!(!kv.delete(tx, 10_000).unwrap());
            kv.commit(tx);
            for k in 0..500u64 {
                assert_eq!(kv.lookup(k).is_some(), k % 2 == 1, "{p:?} key {k}");
            }
            assert_eq!(kv.stats().committed, 2);
        }
    }

    #[test]
    fn rollback_undoes_inserts_overwrites_and_deletes() {
        for p in all_personalities() {
            let (_pool, kv) = store(p);
            let tx = kv.begin();
            for k in 0..50u64 {
                kv.insert(tx, k, value(1)).unwrap();
            }
            kv.commit(tx);
            let tx = kv.begin();
            kv.insert(tx, 100, value(9)).unwrap(); // fresh insert
            kv.insert(tx, 5, value(9)).unwrap(); // overwrite
            kv.delete(tx, 7).unwrap(); // delete
            kv.rollback(tx);
            assert!(kv.lookup(100).is_none(), "{p:?}");
            assert_eq!(kv.lookup(5), Some(value(1)), "{p:?}");
            assert_eq!(kv.lookup(7), Some(value(1)), "{p:?}");
            assert_eq!(kv.stats().rolled_back, 1);
        }
    }

    #[test]
    fn committed_data_survives_crash_and_recovery() {
        for p in all_personalities() {
            let (pool, kv) = store(p);
            let tx = kv.begin();
            for k in 0..200u64 {
                kv.insert(tx, k, value((k % 199) as u8)).unwrap();
            }
            kv.commit(tx);
            // A loser transaction in flight at the crash.
            let loser = kv.begin();
            kv.insert(loser, 999, value(7)).unwrap();
            kv.delete(loser, 3).unwrap();
            pool.power_cycle();
            let processed = kv.recover();
            assert!(processed > 0);
            for k in 0..200u64 {
                assert_eq!(kv.lookup(k), Some(value((k % 199) as u8)), "{p:?} key {k}");
            }
            assert!(kv.lookup(999).is_none(), "{p:?}: loser insert must vanish");
        }
    }

    #[test]
    fn overflow_chains_handle_bucket_collisions() {
        let (_pool, kv) = store(Personality::StasisLike);
        // A single bucket forces every key into one overflow chain.
        let pool = NvmPool::new(PoolConfig::with_capacity(64 << 20));
        let kv_single = KvStore::create(
            Arc::clone(&pool),
            Personality::StasisLike,
            1,
            1024,
            2 << 20,
            16,
        )
        .unwrap();
        let tx = kv_single.begin();
        for k in 0..(ENTRIES_PER_PAGE as u64 * 3) {
            kv_single.insert(tx, k, value((k % 256) as u8)).unwrap();
        }
        kv_single.commit(tx);
        for k in 0..(ENTRIES_PER_PAGE as u64 * 3) {
            assert_eq!(kv_single.lookup(k), Some(value((k % 256) as u8)));
        }
        drop(kv);
    }

    #[test]
    fn baselines_log_far_more_bytes_than_logical_logging() {
        let mut bytes = Vec::new();
        for p in all_personalities() {
            let (_pool, kv) = store(p);
            let tx = kv.begin();
            for k in 0..100u64 {
                kv.insert(tx, k, value(1)).unwrap();
            }
            kv.commit(tx);
            bytes.push(kv.stats().log_bytes);
        }
        // Stasis-like (logical) logs the least, Shore-MT-like (before+after
        // images) the most.
        assert!(bytes[0] < bytes[1], "stasis < bdb: {bytes:?}");
        assert!(bytes[1] < bytes[2], "bdb < shore: {bytes:?}");
    }

    #[test]
    fn buffer_pool_eviction_preserves_data() {
        let pool = NvmPool::new(PoolConfig::with_capacity(64 << 20));
        // Tiny buffer pool: 4 frames over 64 buckets forces constant eviction.
        let kv = KvStore::create(
            Arc::clone(&pool),
            Personality::BerkeleyDbLike,
            64,
            4096,
            8 << 20,
            4,
        )
        .unwrap();
        let tx = kv.begin();
        for k in 0..300u64 {
            kv.insert(tx, k, value((k % 256) as u8)).unwrap();
        }
        kv.commit(tx);
        for k in 0..300u64 {
            assert_eq!(kv.lookup(k), Some(value((k % 256) as u8)));
        }
        assert!(kv.stats().pages_written > 0, "evictions must write pages");
    }
}
