//! Bucketed log storage (the Optimized and Batch variants of Section 3.3).
//!
//! Appending one node per record to the ADLL costs several non-temporal
//! stores and fences per record. The optimized layout instead blocks record
//! *pointers* into fixed-size buckets (arrays in NVM); the ADLL then only
//! grows bucket-by-bucket, amortising the cost of atomic expansion. Placing a
//! record becomes a single word write into the current bucket's next free
//! cell.
//!
//! Removal does not shift cells: a removed record leaves a *gap marker* so
//! that removal is a single atomic write as well; a bucket whose every used
//! cell is a gap is unlinked from the ADLL. Bucket occupancy and the next
//! insert position are volatile and are reconstructed during the analysis
//! phase after a crash, exactly as the paper describes.
//!
//! The Batch variant adds the "multiple log records per cacheline"
//! optimisation: record pointers are written with ordinary stores and only
//! every `group_size` records (or on a bucket boundary, or when an END record
//! is logged) does the log issue one flush + fence and then advance the
//! bucket's persistent watermark (`last_persistent`) with a single
//! non-temporal store. Recovery trusts only the cells below the watermark.

use crate::Result;
use rewind_nvm::{NvmPool, PAddr};
use std::sync::Arc;

/// Cell value marking a cleared (removed) record.
pub const GAP: u64 = u64::MAX;

/// Bucket header words before the cells begin.
const BUCKET_HEADER_WORDS: u64 = 2;
const OFF_CAPACITY: u64 = 0;
const OFF_LAST_PERSISTENT: u64 = 1;

/// A fixed-size array of record-pointer cells in NVM.
///
/// Layout: `capacity, last_persistent, cell[0], cell[1], ...`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Address of the bucket in NVM.
    pub addr: PAddr,
}

impl Bucket {
    /// Bytes needed for a bucket with `capacity` cells.
    pub fn byte_size(capacity: usize) -> usize {
        (BUCKET_HEADER_WORDS as usize + capacity) * 8
    }

    /// Allocates and formats a new bucket with `capacity` zeroed cells.
    ///
    /// The zero-fill uses ordinary stores followed by a single flush of the
    /// bucket range: a fresh bucket only becomes reachable once the ADLL
    /// append that links it in persists, and that append fences first.
    pub fn create(pool: &Arc<NvmPool>, capacity: usize) -> Result<Bucket> {
        let addr = pool.alloc(Self::byte_size(capacity))?;
        pool.write_u64(addr.word(OFF_CAPACITY), capacity as u64);
        pool.write_u64(addr.word(OFF_LAST_PERSISTENT), 0);
        for i in 0..capacity as u64 {
            pool.write_u64(addr.word(BUCKET_HEADER_WORDS + i), 0);
        }
        pool.clflush_range(addr, Self::byte_size(capacity));
        Ok(Bucket { addr })
    }

    /// Attaches to an existing bucket.
    pub fn attach(addr: PAddr) -> Bucket {
        Bucket { addr }
    }

    /// Number of cells in this bucket.
    pub fn capacity(&self, pool: &NvmPool) -> usize {
        pool.read_u64(self.addr.word(OFF_CAPACITY)) as usize
    }

    /// Persistent watermark: cells `< last_persistent` are guaranteed to be
    /// persistent (Batch variant only; the Optimized variant persists each
    /// cell as it is written and ignores the watermark).
    pub fn last_persistent(&self, pool: &NvmPool) -> usize {
        pool.read_u64(self.addr.word(OFF_LAST_PERSISTENT)) as usize
    }

    /// Address of cell `idx`.
    pub fn cell_addr(&self, idx: usize) -> PAddr {
        self.addr.word(BUCKET_HEADER_WORDS + idx as u64)
    }

    /// Reads cell `idx` (0 = empty, [`GAP`] = cleared, otherwise a record
    /// address).
    pub fn cell(&self, pool: &NvmPool, idx: usize) -> u64 {
        pool.read_u64(self.cell_addr(idx))
    }

    /// Writes a record pointer into cell `idx` with a single non-temporal
    /// store (Optimized variant: the insert is atomic and immediately
    /// persistent).
    pub fn set_cell_nt(&self, pool: &NvmPool, idx: usize, record: PAddr) {
        pool.write_u64_nt(self.cell_addr(idx), record.offset());
    }

    /// Writes a record pointer into cell `idx` with an ordinary store (Batch
    /// variant: persistence is deferred to the group flush).
    pub fn set_cell(&self, pool: &NvmPool, idx: usize, record: PAddr) {
        pool.write_u64(self.cell_addr(idx), record.offset());
    }

    /// Marks cell `idx` as a gap (record cleared). A single non-temporal
    /// store, atomic with respect to failure.
    pub fn clear_cell(&self, pool: &NvmPool, idx: usize) {
        pool.write_u64_nt(self.cell_addr(idx), GAP);
    }

    /// Flushes the cachelines covering cells `[from, to)` and the records
    /// they point to, fences once, and advances the persistent watermark to
    /// `to`. This is the Batch variant's group-persist step: one fence and
    /// one non-temporal store cover up to `group_size` records.
    pub fn persist_group(&self, pool: &NvmPool, from: usize, to: usize) {
        if to <= from {
            return;
        }
        // Flush the record payloads first, then the cells pointing at them.
        for idx in from..to {
            let rec = self.cell(pool, idx);
            if rec != 0 && rec != GAP {
                pool.clflush_range(PAddr::new(rec), crate::record::RECORD_SIZE);
            }
        }
        pool.clflush_range(self.cell_addr(from), (to - from) * 8);
        pool.sfence();
        pool.write_u64_nt(self.addr.word(OFF_LAST_PERSISTENT), to as u64);
    }

    /// Scans the bucket and returns `(next_free, live_records)`:
    /// the index one past the last used cell, and the number of cells that
    /// hold a live (non-gap) record. Used during the analysis phase to
    /// reconstruct the volatile insert position and occupancy counts.
    ///
    /// `trust_watermark` restricts the scan to cells below the persistent
    /// watermark (Batch variant after a crash).
    pub fn reconstruct(&self, pool: &NvmPool, trust_watermark: bool) -> (usize, usize) {
        let capacity = self.capacity(pool);
        let limit = if trust_watermark {
            self.last_persistent(pool).min(capacity)
        } else {
            capacity
        };
        let mut next_free = 0;
        let mut live = 0;
        for idx in 0..limit {
            let v = self.cell(pool, idx);
            if v != 0 {
                next_free = idx + 1;
                if v != GAP {
                    live += 1;
                }
            }
        }
        (next_free, live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{LogRecord, RECORD_SIZE};
    use rewind_nvm::PoolConfig;

    fn pool() -> Arc<NvmPool> {
        NvmPool::new(PoolConfig::small())
    }

    fn make_record(pool: &Arc<NvmPool>, lsn: u64) -> PAddr {
        let addr = pool.alloc(RECORD_SIZE).unwrap();
        LogRecord::update(lsn, 1, PAddr::new(0x100), 0, lsn).write_to_nt(pool, addr);
        addr
    }

    #[test]
    fn create_and_capacity() {
        let p = pool();
        let b = Bucket::create(&p, 10).unwrap();
        assert_eq!(b.capacity(&p), 10);
        assert_eq!(b.last_persistent(&p), 0);
        for i in 0..10 {
            assert_eq!(b.cell(&p, i), 0);
        }
        assert_eq!(Bucket::byte_size(10), 96);
    }

    #[test]
    fn nt_cell_writes_are_persistent_immediately() {
        let p = pool();
        let b = Bucket::create(&p, 4).unwrap();
        let r = make_record(&p, 1);
        b.set_cell_nt(&p, 0, r);
        p.power_cycle();
        let b = Bucket::attach(b.addr);
        assert_eq!(b.cell(&p, 0), r.offset());
    }

    #[test]
    fn regular_cell_writes_need_the_group_persist() {
        let p = pool();
        let b = Bucket::create(&p, 8).unwrap();
        p.flush_all(); // make the formatted bucket durable
        let r0 = make_record(&p, 1);
        let r1 = make_record(&p, 2);
        b.set_cell(&p, 0, r0);
        b.set_cell(&p, 1, r1);
        // Without a group persist both cells are lost.
        p.power_cycle();
        assert_eq!(b.cell(&p, 0), 0);
        assert_eq!(b.cell(&p, 1), 0);
        // With a group persist they survive, and the watermark advances.
        let r0 = make_record(&p, 1);
        let r1 = make_record(&p, 2);
        b.set_cell(&p, 0, r0);
        b.set_cell(&p, 1, r1);
        b.persist_group(&p, 0, 2);
        p.power_cycle();
        assert_eq!(b.cell(&p, 0), r0.offset());
        assert_eq!(b.cell(&p, 1), r1.offset());
        assert_eq!(b.last_persistent(&p), 2);
    }

    #[test]
    fn group_persist_costs_one_fence_for_many_records() {
        let p = pool();
        let b = Bucket::create(&p, 8).unwrap();
        let records: Vec<PAddr> = (0..8).map(|i| make_record(&p, i)).collect();
        for (i, r) in records.iter().enumerate() {
            b.set_cell(&p, i, *r);
        }
        let before = p.stats();
        b.persist_group(&p, 0, 8);
        let d = p.stats().since(&before);
        assert_eq!(d.fences, 1, "one fence per group");
        assert_eq!(d.nt_stores, 1, "one watermark store per group");
    }

    #[test]
    fn reconstruct_counts_gaps_and_finds_insert_position() {
        let p = pool();
        let b = Bucket::create(&p, 8).unwrap();
        for i in 0..5 {
            let r = make_record(&p, i as u64);
            b.set_cell_nt(&p, i, r);
        }
        b.clear_cell(&p, 1);
        b.clear_cell(&p, 4);
        let (next_free, live) = b.reconstruct(&p, false);
        assert_eq!(next_free, 5);
        assert_eq!(live, 3);
    }

    #[test]
    fn reconstruct_with_watermark_ignores_unpersisted_tail() {
        let p = pool();
        let b = Bucket::create(&p, 8).unwrap();
        for i in 0..6 {
            let r = make_record(&p, i as u64);
            b.set_cell(&p, i, r);
        }
        b.persist_group(&p, 0, 4);
        // Cells 4 and 5 were written but never covered by a group persist.
        let (next_free, live) = b.reconstruct(&p, true);
        assert_eq!(next_free, 4);
        assert_eq!(live, 4);
        // Without trusting the watermark the scan sees all six.
        let (next_free, live) = b.reconstruct(&p, false);
        assert_eq!(next_free, 6);
        assert_eq!(live, 6);
    }

    #[test]
    fn clear_cell_is_durable() {
        let p = pool();
        let b = Bucket::create(&p, 4).unwrap();
        let r = make_record(&p, 7);
        b.set_cell_nt(&p, 0, r);
        b.clear_cell(&p, 0);
        p.power_cycle();
        assert_eq!(b.cell(&p, 0), GAP);
    }
}
