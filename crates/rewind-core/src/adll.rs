//! The Atomic Doubly-Linked List (ADLL).
//!
//! The ADLL (paper Section 3.2) is the keystone of REWIND: a doubly-linked
//! list living entirely in NVM whose append and remove operations are
//! themselves atomic and recoverable. Recoverability is obtained by:
//!
//! * keeping a tiny amount of undo/redo state in *single words* that the
//!   hardware can persist atomically (`last_tail`, `to_append`, `to_remove`);
//! * ordering those writes so that the list is consistent whether a failure
//!   happens before or after the single "critical" write of each operation;
//! * making the recovery code idempotent, so a crash during recovery is
//!   handled by simply running recovery again;
//! * issuing every list-structure write as a non-temporal store so nothing
//!   lingers in the cache.
//!
//! Each node carries a payload pointer (`element`): in the Simple log the
//! payload is a log record, in the Optimized/Batch logs it is a bucket of
//! record slots, and in the two-layer configuration the bottom-layer ADLL
//! carries the AVL index's own undo records.
//!
//! The ADLL itself is **not** internally synchronized: the owning log wraps
//! every structural operation in a short critical section (the paper's
//! fine-grained log latch).

use crate::Result;
use rewind_nvm::{NvmPool, PAddr};
use std::sync::Arc;

/// Persistent header layout (one word each, consecutive):
/// `head, tail, last_tail, to_append, to_remove`.
pub const ADLL_HEADER_SIZE: usize = 5 * 8;

/// Node layout: `next, prev, element`.
pub const ADLL_NODE_SIZE: usize = 3 * 8;

const OFF_HEAD: u64 = 0;
const OFF_TAIL: u64 = 1;
const OFF_LAST_TAIL: u64 = 2;
const OFF_TO_APPEND: u64 = 3;
const OFF_TO_REMOVE: u64 = 4;

const NODE_NEXT: u64 = 0;
const NODE_PREV: u64 = 1;
const NODE_ELEMENT: u64 = 2;

/// An atomic, recoverable doubly-linked list anchored at a persistent header.
#[derive(Debug, Clone)]
pub struct Adll {
    pool: Arc<NvmPool>,
    /// Address of the persistent header.
    header: PAddr,
}

/// What [`Adll::recover`] found and repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdllRecovery {
    /// An interrupted append was completed.
    pub redid_append: bool,
    /// An interrupted removal was completed.
    pub redid_remove: bool,
}

impl Adll {
    /// Creates a new, empty list: allocates and persists its header.
    pub fn create(pool: Arc<NvmPool>) -> Result<Self> {
        let header = pool.alloc(ADLL_HEADER_SIZE)?;
        for i in 0..5 {
            pool.write_u64_nt(header.word(i), 0);
        }
        pool.sfence();
        Ok(Adll { pool, header })
    }

    /// Attaches to an existing list whose header lives at `header`.
    pub fn attach(pool: Arc<NvmPool>, header: PAddr) -> Self {
        Adll { pool, header }
    }

    /// Address of the persistent header (store this in a durable root to
    /// re-attach after a restart).
    pub fn header(&self) -> PAddr {
        self.header
    }

    /// The pool this list lives in.
    pub fn pool(&self) -> &Arc<NvmPool> {
        &self.pool
    }

    #[inline]
    fn hdr_read(&self, word: u64) -> PAddr {
        PAddr::new(self.pool.read_u64(self.header.word(word)))
    }

    #[inline]
    fn hdr_write(&self, word: u64, value: PAddr) {
        self.pool
            .write_u64_nt(self.header.word(word), value.offset());
    }

    #[inline]
    fn node_read(&self, node: PAddr, word: u64) -> PAddr {
        PAddr::new(self.pool.read_u64(node.word(word)))
    }

    #[inline]
    fn node_write(&self, node: PAddr, word: u64, value: PAddr) {
        self.pool.write_u64_nt(node.word(word), value.offset());
    }

    /// First node of the list (or null).
    pub fn head(&self) -> PAddr {
        self.hdr_read(OFF_HEAD)
    }

    /// Last node of the list (or null).
    pub fn tail(&self) -> PAddr {
        self.hdr_read(OFF_TAIL)
    }

    /// Payload pointer carried by `node`.
    pub fn element(&self, node: PAddr) -> PAddr {
        self.node_read(node, NODE_ELEMENT)
    }

    /// Successor of `node` (or null).
    pub fn next(&self, node: PAddr) -> PAddr {
        self.node_read(node, NODE_NEXT)
    }

    /// Predecessor of `node` (or null).
    pub fn prev(&self, node: PAddr) -> PAddr {
        self.node_read(node, NODE_PREV)
    }

    /// Returns `true` if the list has no nodes.
    pub fn is_empty(&self) -> bool {
        self.head().is_null()
    }

    /// Number of nodes (O(n); the list deliberately keeps no durable count).
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Appends a node carrying `element` and returns the new node's address.
    ///
    /// This is Algorithm 1 of the paper: the single critical write is the one
    /// to `to_append`; everything after it can be redone idempotently by
    /// [`Adll::recover`].
    pub fn append(&self, element: PAddr) -> Result<PAddr> {
        let pool = &self.pool;
        // Set up the new node "off-line".
        let node = pool.alloc(ADLL_NODE_SIZE)?;
        let tail = self.tail();
        self.node_write(node, NODE_NEXT, PAddr::NULL);
        self.node_write(node, NODE_PREV, tail);
        self.node_write(node, NODE_ELEMENT, element);
        // Undo information: remember the tail as of before this append. Not
        // critical — if we crash before `to_append` is set the list is
        // untouched and this value is simply overwritten by the next append.
        self.hdr_write(OFF_LAST_TAIL, tail);
        pool.sfence();
        // Critical write: from here on, recovery will (re)do this append.
        self.hdr_write(OFF_TO_APPEND, node);
        pool.sfence();
        // Link the node in. Each of these writes is idempotent with respect
        // to recovery because recovery re-derives them from `last_tail` and
        // `to_append`.
        if self.head().is_null() {
            self.hdr_write(OFF_HEAD, node);
        }
        if !tail.is_null() {
            self.node_write(tail, NODE_NEXT, node);
        }
        self.hdr_write(OFF_TAIL, node);
        pool.sfence();
        // Append finished: clear the undo/redo marker.
        self.hdr_write(OFF_TO_APPEND, PAddr::NULL);
        pool.sfence();
        Ok(node)
    }

    /// Unlinks `node` from the list. The node's memory is *not* freed — the
    /// caller defers de-allocation until it is safe (mirroring the paper's
    /// DELETE-record treatment).
    pub fn remove(&self, node: PAddr) -> Result<()> {
        let pool = &self.pool;
        // Critical write: record which node is being removed.
        self.hdr_write(OFF_TO_REMOVE, node);
        pool.sfence();
        self.unlink(node);
        pool.sfence();
        self.hdr_write(OFF_TO_REMOVE, PAddr::NULL);
        pool.sfence();
        Ok(())
    }

    /// The re-executable body of `remove`: safe to run any number of times
    /// because the removed node's own `next`/`prev` fields are never modified.
    fn unlink(&self, node: PAddr) {
        let prev = self.prev(node);
        let next = self.next(node);
        if !prev.is_null() {
            self.node_write(prev, NODE_NEXT, next);
        } else {
            self.hdr_write(OFF_HEAD, next);
        }
        if !next.is_null() {
            self.node_write(next, NODE_PREV, prev);
        } else {
            self.hdr_write(OFF_TAIL, prev);
        }
    }

    /// Recovers the list after a failure by completing whichever operation
    /// (if any) was interrupted. Safe to call repeatedly; a crash *during*
    /// recovery is handled by calling it again.
    pub fn recover(&self) -> Result<AdllRecovery> {
        let pool = &self.pool;
        let mut report = AdllRecovery::default();
        let to_append = self.hdr_read(OFF_TO_APPEND);
        if !to_append.is_null() {
            // Redo the append using `last_tail` (not `tail`, which may or may
            // not already point at the new node).
            let node = to_append;
            let last_tail = self.hdr_read(OFF_LAST_TAIL);
            if last_tail.is_null() {
                // The list was empty before the append.
                self.hdr_write(OFF_HEAD, node);
            } else {
                self.node_write(last_tail, NODE_NEXT, node);
            }
            self.hdr_write(OFF_TAIL, node);
            pool.sfence();
            self.hdr_write(OFF_TO_APPEND, PAddr::NULL);
            pool.sfence();
            report.redid_append = true;
        }
        let to_remove = self.hdr_read(OFF_TO_REMOVE);
        if !to_remove.is_null() {
            self.unlink(to_remove);
            pool.sfence();
            self.hdr_write(OFF_TO_REMOVE, PAddr::NULL);
            pool.sfence();
            report.redid_remove = true;
        }
        Ok(report)
    }

    /// Iterates node addresses from head to tail.
    pub fn iter(&self) -> AdllIter<'_> {
        AdllIter {
            list: self,
            cursor: self.head(),
            forward: true,
        }
    }

    /// Iterates node addresses from tail to head.
    pub fn iter_rev(&self) -> AdllIter<'_> {
        AdllIter {
            list: self,
            cursor: self.tail(),
            forward: false,
        }
    }

    /// Collects the payload (`element`) pointers from head to tail.
    pub fn elements(&self) -> Vec<PAddr> {
        self.iter().map(|n| self.element(n)).collect()
    }
}

/// Iterator over the node addresses of an [`Adll`].
pub struct AdllIter<'a> {
    list: &'a Adll,
    cursor: PAddr,
    forward: bool,
}

impl Iterator for AdllIter<'_> {
    type Item = PAddr;

    fn next(&mut self) -> Option<PAddr> {
        if self.cursor.is_null() {
            return None;
        }
        let node = self.cursor;
        self.cursor = if self.forward {
            self.list.next(node)
        } else {
            self.list.prev(node)
        };
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_nvm::PoolConfig;

    fn pool() -> Arc<NvmPool> {
        NvmPool::new(PoolConfig::small())
    }

    /// Payload helper: allocate a word holding `v` (persisted).
    fn payload(pool: &Arc<NvmPool>, v: u64) -> PAddr {
        let a = pool.alloc(8).unwrap();
        pool.write_u64_nt(a, v);
        a
    }

    fn values(list: &Adll) -> Vec<u64> {
        list.elements()
            .iter()
            .map(|e| list.pool().read_u64(*e))
            .collect()
    }

    #[test]
    fn append_builds_list_in_order() {
        let p = pool();
        let list = Adll::create(Arc::clone(&p)).unwrap();
        assert!(list.is_empty());
        for v in 1..=5 {
            list.append(payload(&p, v)).unwrap();
        }
        assert_eq!(values(&list), vec![1, 2, 3, 4, 5]);
        assert_eq!(list.len(), 5);
        // Reverse iteration sees the same nodes backwards.
        let rev: Vec<u64> = list
            .iter_rev()
            .map(|n| p.read_u64(list.element(n)))
            .collect();
        assert_eq!(rev, vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn list_survives_power_cycle() {
        let p = pool();
        let list = Adll::create(Arc::clone(&p)).unwrap();
        for v in 1..=4 {
            list.append(payload(&p, v)).unwrap();
        }
        let header = list.header();
        p.power_cycle();
        let list = Adll::attach(Arc::clone(&p), header);
        list.recover().unwrap();
        assert_eq!(values(&list), vec![1, 2, 3, 4]);
    }

    #[test]
    fn remove_middle_head_and_tail() {
        let p = pool();
        let list = Adll::create(Arc::clone(&p)).unwrap();
        let nodes: Vec<PAddr> = (1..=5)
            .map(|v| list.append(payload(&p, v)).unwrap())
            .collect();
        list.remove(nodes[2]).unwrap(); // middle
        assert_eq!(values(&list), vec![1, 2, 4, 5]);
        list.remove(nodes[0]).unwrap(); // head
        assert_eq!(values(&list), vec![2, 4, 5]);
        list.remove(nodes[4]).unwrap(); // tail
        assert_eq!(values(&list), vec![2, 4]);
        list.remove(nodes[1]).unwrap();
        list.remove(nodes[3]).unwrap();
        assert!(list.is_empty());
        assert!(list.tail().is_null());
    }

    #[test]
    fn recover_is_a_noop_when_nothing_pending() {
        let p = pool();
        let list = Adll::create(Arc::clone(&p)).unwrap();
        list.append(payload(&p, 1)).unwrap();
        let r = list.recover().unwrap();
        assert_eq!(r, AdllRecovery::default());
        assert_eq!(values(&list), vec![1]);
    }

    /// Exhaustive crash sweep over the append operation: for every possible
    /// crash point (counted in persist events) the list must recover either
    /// to the pre-append or to the post-append state — never anything else.
    #[test]
    fn append_crash_sweep_recovers_to_consistent_state() {
        // First measure how many persist events one append takes.
        let p = pool();
        let list = Adll::create(Arc::clone(&p)).unwrap();
        list.append(payload(&p, 1)).unwrap();
        let before = p.stats();
        list.append(payload(&p, 2)).unwrap();
        let events_per_append =
            (p.stats().since(&before).nt_stores + p.stats().since(&before).fences) + 4;

        for crash_at in 1..=events_per_append {
            let p = pool();
            let list = Adll::create(Arc::clone(&p)).unwrap();
            list.append(payload(&p, 1)).unwrap();
            let second = payload(&p, 2);
            p.crash_injector().arm_after(crash_at);
            // The append may or may not "complete" from the caller's view;
            // either way we power-cycle and recover.
            let _ = list.append(second);
            p.power_cycle();
            let header = list.header();
            let list = Adll::attach(Arc::clone(&p), header);
            list.recover().unwrap();
            // Run recovery twice to check idempotence (a crash during
            // recovery is modelled by just recovering again).
            list.recover().unwrap();
            let vals = values(&list);
            assert!(
                vals == vec![1] || vals == vec![1, 2],
                "crash at persist event {crash_at} left inconsistent list {vals:?}"
            );
            // Whatever the outcome, the list must still support appends.
            list.append(payload(&p, 3)).unwrap();
            let vals = values(&list);
            assert_eq!(*vals.last().unwrap(), 3);
        }
    }

    /// Exhaustive crash sweep over removal.
    #[test]
    fn remove_crash_sweep_recovers_to_consistent_state() {
        for crash_at in 1..=12u64 {
            let p = pool();
            let list = Adll::create(Arc::clone(&p)).unwrap();
            let nodes: Vec<PAddr> = (1..=3)
                .map(|v| list.append(payload(&p, v)).unwrap())
                .collect();
            p.crash_injector().arm_after(crash_at);
            let _ = list.remove(nodes[1]);
            p.power_cycle();
            let list = Adll::attach(Arc::clone(&p), list.header());
            list.recover().unwrap();
            list.recover().unwrap();
            let vals = values(&list);
            assert!(
                vals == vec![1, 2, 3] || vals == vec![1, 3],
                "crash at persist event {crash_at} left inconsistent list {vals:?}"
            );
        }
    }

    #[test]
    fn crash_during_recovery_is_recoverable() {
        let p = pool();
        let list = Adll::create(Arc::clone(&p)).unwrap();
        list.append(payload(&p, 1)).unwrap();
        let e2 = payload(&p, 2);
        // Crash in the middle of the append (after the critical write).
        p.crash_injector().arm_after(6);
        let _ = list.append(e2);
        p.power_cycle();
        let list = Adll::attach(Arc::clone(&p), list.header());
        // Now crash in the middle of recovery itself.
        p.crash_injector().arm_after(1);
        let _ = list.recover();
        p.power_cycle();
        let list = Adll::attach(Arc::clone(&p), list.header());
        list.recover().unwrap();
        let vals = values(&list);
        assert!(vals == vec![1] || vals == vec![1, 2], "got {vals:?}");
    }

    #[test]
    fn len_and_elements_on_empty_list() {
        let p = pool();
        let list = Adll::create(p).unwrap();
        assert_eq!(list.len(), 0);
        assert!(list.elements().is_empty());
        assert_eq!(list.iter_rev().count(), 0);
    }
}
