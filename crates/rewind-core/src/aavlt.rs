//! The Atomic AVL Tree (AAVLT) — the second layer of two-layer logging.
//!
//! One-layer logging finds the records of a specific transaction by scanning
//! the whole log, which degrades with the number of interleaved records from
//! other transactions ("skip records"). The two-layer configuration instead
//! indexes log records by transaction identifier in an AVL tree that lives in
//! NVM (Section 3.4 of the paper).
//!
//! The tree must itself be crash-consistent. Rebalancing performs a variable
//! number of pointer and height updates, so unlike the ADLL it cannot be made
//! atomic with a constant number of single-word writes. Instead, every write
//! that changes reachable tree state is *undo-logged* in a private
//! [`RecoverableLog`] (the bucketed ADLL of Section 3.3), applied with a
//! non-temporal store, and the undo entries are cleared once the operation
//! completes. At most one tree operation is ever in flight (operations are
//! serialized), so recovery only ever has to roll back a single unfinished
//! operation: it restores the logged before-images in reverse order — a
//! procedure that is idempotent and therefore safe to repeat if the system
//! fails again during recovery. De-allocation of removed nodes is deferred to
//! the end of the operation, as the paper requires.
//!
//! Each tree node represents one transaction and anchors that transaction's
//! chain of log records (most recent first, linked through the records' `prev`
//! field), which is what gives the two-layer configuration its fast selective
//! rollback.

use crate::config::RewindConfig;
use crate::log::RecoverableLog;
use crate::record::LogRecord;
use crate::Result;
use parking_lot::Mutex;
use rewind_nvm::{NvmPool, PAddr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Size of one AVL node in NVM.
pub const AAVLT_NODE_SIZE: usize = 6 * 8;

const N_KEY: u64 = 0;
const N_LEFT: u64 = 1;
const N_RIGHT: u64 = 2;
const N_HEIGHT: u64 = 3;
const N_CHAIN: u64 = 4;
const N_COUNT: u64 = 5;

/// Transaction id used for the tree's own undo records in its private log.
const META_TXID: u64 = u64::MAX;

/// The Atomic AVL Tree.
#[derive(Debug)]
pub struct Aavlt {
    pool: Arc<NvmPool>,
    /// Private undo log for the tree's own structural updates.
    meta_log: RecoverableLog,
    /// Persistent cell holding the root node address.
    root_cell: PAddr,
    /// Serializes tree operations: "every update to the AAVLT is only
    /// executed by a single thread" (Section 3.4).
    op_lock: Mutex<()>,
    meta_lsn: AtomicU64,
}

/// A pair of persistent addresses needed to re-attach an [`Aavlt`] after a
/// restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AavltRoot {
    /// The cell holding the tree root pointer.
    pub root_cell: PAddr,
    /// The ADLL header of the tree's private undo log.
    pub meta_log_header: PAddr,
}

impl Aavlt {
    /// Creates an empty tree (and its private undo log) in `pool`.
    pub fn create(pool: Arc<NvmPool>, cfg: &RewindConfig) -> Result<Self> {
        // The index's own log always uses the Optimized structure, as in the
        // paper ("we use the optimized version of the ADLL").
        let meta_cfg = RewindConfig {
            structure: crate::config::LogStructure::Optimized,
            ..*cfg
        };
        let meta_log = RecoverableLog::create(Arc::clone(&pool), &meta_cfg)?;
        let root_cell = pool.alloc(8)?;
        pool.write_u64_nt(root_cell, 0);
        pool.sfence();
        Ok(Aavlt {
            pool,
            meta_log,
            root_cell,
            op_lock: Mutex::new(()),
            meta_lsn: AtomicU64::new(1),
        })
    }

    /// Re-attaches to an existing tree and rolls back any interrupted
    /// operation.
    pub fn attach(pool: Arc<NvmPool>, cfg: &RewindConfig, root: AavltRoot) -> Result<Self> {
        let meta_cfg = RewindConfig {
            structure: crate::config::LogStructure::Optimized,
            ..*cfg
        };
        let meta_log = RecoverableLog::attach(Arc::clone(&pool), &meta_cfg, root.meta_log_header)?;
        let tree = Aavlt {
            pool,
            meta_log,
            root_cell: root.root_cell,
            op_lock: Mutex::new(()),
            meta_lsn: AtomicU64::new(1),
        };
        tree.recover()?;
        Ok(tree)
    }

    /// The persistent addresses needed to re-attach this tree later.
    pub fn durable_root(&self) -> AavltRoot {
        AavltRoot {
            root_cell: self.root_cell,
            meta_log_header: self.meta_log.header(),
        }
    }

    /// Number of transactions currently indexed.
    pub fn len(&self) -> usize {
        self.txids().len()
    }

    /// Returns `true` if no transaction is indexed.
    pub fn is_empty(&self) -> bool {
        self.root().is_null()
    }

    fn root(&self) -> PAddr {
        PAddr::new(self.pool.read_u64(self.root_cell))
    }

    fn field(&self, node: PAddr, word: u64) -> u64 {
        self.pool.read_u64(node.word(word))
    }

    /// A logged, persistent write to reachable tree state: the before-image
    /// goes to the private undo log first, then the word is updated in place.
    fn logged_write(&self, addr: PAddr, new: u64) -> Result<()> {
        let old = self.pool.read_u64(addr);
        if old == new {
            return Ok(());
        }
        let lsn = self.meta_lsn.fetch_add(1, Ordering::Relaxed);
        let rec = LogRecord::update(lsn, META_TXID, addr, old, new);
        self.meta_log.append(&rec)?;
        self.pool.write_u64_nt(addr, new);
        Ok(())
    }

    /// Initialises a freshly allocated (unreachable) node; no logging needed.
    fn init_node(&self, node: PAddr, key: u64) {
        self.pool.write_u64_nt(node.word(N_KEY), key);
        self.pool.write_u64_nt(node.word(N_LEFT), 0);
        self.pool.write_u64_nt(node.word(N_RIGHT), 0);
        self.pool.write_u64_nt(node.word(N_HEIGHT), 1);
        self.pool.write_u64_nt(node.word(N_CHAIN), 0);
        self.pool.write_u64_nt(node.word(N_COUNT), 0);
    }

    /// Completes an operation: persist a fence, clear the undo entries and
    /// free nodes whose removal was deferred.
    fn finish_op(&self, deferred_free: &[PAddr]) -> Result<()> {
        self.pool.sfence();
        // Clearing one entry at a time keeps the private log tiny; the
        // operations below never interleave with another tree operation.
        for entry in self.meta_log.scan(false)? {
            self.meta_log.clear_slot(entry.slot)?;
        }
        for node in deferred_free {
            self.pool.free(*node, AAVLT_NODE_SIZE)?;
        }
        Ok(())
    }

    /// Rolls back an interrupted tree operation, if any. Returns `true` if
    /// there was something to roll back. Idempotent.
    pub fn recover(&self) -> Result<bool> {
        let entries = self.meta_log.scan(true)?;
        if entries.is_empty() {
            return Ok(false);
        }
        for entry in entries.iter().rev() {
            self.pool.write_u64_nt(entry.record.addr, entry.record.old);
        }
        self.pool.sfence();
        for entry in entries {
            self.meta_log.clear_slot(entry.slot)?;
        }
        Ok(true)
    }

    // ------------------------------------------------------------------
    // AVL mechanics (all reachable-state writes go through logged_write)
    // ------------------------------------------------------------------

    fn height(&self, node: PAddr) -> u64 {
        if node.is_null() {
            0
        } else {
            self.field(node, N_HEIGHT)
        }
    }

    fn update_height(&self, node: PAddr) -> Result<()> {
        let h = 1 + self
            .height(PAddr::new(self.field(node, N_LEFT)))
            .max(self.height(PAddr::new(self.field(node, N_RIGHT))));
        self.logged_write(node.word(N_HEIGHT), h)
    }

    fn balance_factor(&self, node: PAddr) -> i64 {
        self.height(PAddr::new(self.field(node, N_LEFT))) as i64
            - self.height(PAddr::new(self.field(node, N_RIGHT))) as i64
    }

    fn rotate_right(&self, y: PAddr) -> Result<PAddr> {
        let x = PAddr::new(self.field(y, N_LEFT));
        let t2 = self.field(x, N_RIGHT);
        self.logged_write(y.word(N_LEFT), t2)?;
        self.logged_write(x.word(N_RIGHT), y.offset())?;
        self.update_height(y)?;
        self.update_height(x)?;
        Ok(x)
    }

    fn rotate_left(&self, x: PAddr) -> Result<PAddr> {
        let y = PAddr::new(self.field(x, N_RIGHT));
        let t2 = self.field(y, N_LEFT);
        self.logged_write(x.word(N_RIGHT), t2)?;
        self.logged_write(y.word(N_LEFT), x.offset())?;
        self.update_height(x)?;
        self.update_height(y)?;
        Ok(y)
    }

    fn rebalance(&self, node: PAddr) -> Result<PAddr> {
        self.update_height(node)?;
        let bf = self.balance_factor(node);
        if bf > 1 {
            let left = PAddr::new(self.field(node, N_LEFT));
            if self.balance_factor(left) < 0 {
                let new_left = self.rotate_left(left)?;
                self.logged_write(node.word(N_LEFT), new_left.offset())?;
            }
            return self.rotate_right(node);
        }
        if bf < -1 {
            let right = PAddr::new(self.field(node, N_RIGHT));
            if self.balance_factor(right) > 0 {
                let new_right = self.rotate_right(right)?;
                self.logged_write(node.word(N_RIGHT), new_right.offset())?;
            }
            return self.rotate_left(node);
        }
        Ok(node)
    }

    fn find_node(&self, txid: u64) -> PAddr {
        let mut cur = self.root();
        while !cur.is_null() {
            let key = self.field(cur, N_KEY);
            if txid == key {
                return cur;
            }
            cur = PAddr::new(self.field(cur, if txid < key { N_LEFT } else { N_RIGHT }));
        }
        PAddr::NULL
    }

    fn insert_node(&self, subtree: PAddr, node: PAddr, key: u64) -> Result<PAddr> {
        if subtree.is_null() {
            return Ok(node);
        }
        let skey = self.field(subtree, N_KEY);
        if key < skey {
            let left = PAddr::new(self.field(subtree, N_LEFT));
            let new_left = self.insert_node(left, node, key)?;
            self.logged_write(subtree.word(N_LEFT), new_left.offset())?;
        } else {
            let right = PAddr::new(self.field(subtree, N_RIGHT));
            let new_right = self.insert_node(right, node, key)?;
            self.logged_write(subtree.word(N_RIGHT), new_right.offset())?;
        }
        self.rebalance(subtree)
    }

    fn min_node(&self, mut node: PAddr) -> PAddr {
        loop {
            let left = PAddr::new(self.field(node, N_LEFT));
            if left.is_null() {
                return node;
            }
            node = left;
        }
    }

    fn delete_node(
        &self,
        subtree: PAddr,
        key: u64,
        deferred_free: &mut Vec<PAddr>,
    ) -> Result<PAddr> {
        if subtree.is_null() {
            return Ok(PAddr::NULL);
        }
        let skey = self.field(subtree, N_KEY);
        if key < skey {
            let left = PAddr::new(self.field(subtree, N_LEFT));
            let new_left = self.delete_node(left, key, deferred_free)?;
            self.logged_write(subtree.word(N_LEFT), new_left.offset())?;
        } else if key > skey {
            let right = PAddr::new(self.field(subtree, N_RIGHT));
            let new_right = self.delete_node(right, key, deferred_free)?;
            self.logged_write(subtree.word(N_RIGHT), new_right.offset())?;
        } else {
            let left = PAddr::new(self.field(subtree, N_LEFT));
            let right = PAddr::new(self.field(subtree, N_RIGHT));
            if left.is_null() || right.is_null() {
                deferred_free.push(subtree);
                return Ok(if left.is_null() { right } else { left });
            }
            // Two children: move the in-order successor's payload into this
            // node, then delete the successor from the right subtree.
            let succ = self.min_node(right);
            self.logged_write(subtree.word(N_KEY), self.field(succ, N_KEY))?;
            self.logged_write(subtree.word(N_CHAIN), self.field(succ, N_CHAIN))?;
            self.logged_write(subtree.word(N_COUNT), self.field(succ, N_COUNT))?;
            let succ_key = self.field(succ, N_KEY);
            let new_right = self.delete_node(right, succ_key, deferred_free)?;
            self.logged_write(subtree.word(N_RIGHT), new_right.offset())?;
        }
        self.rebalance(subtree)
    }

    // ------------------------------------------------------------------
    // Public index operations
    // ------------------------------------------------------------------

    /// Indexes an already-persistent log record under its transaction,
    /// linking it at the head of the transaction's record chain. The record's
    /// `prev` field is updated to the previous chain head.
    pub fn insert_record(&self, txid: u64, record_addr: PAddr) -> Result<()> {
        let _op = self.op_lock.lock();
        let mut node = self.find_node(txid);
        let mut deferred = Vec::new();
        if node.is_null() {
            node = self.pool.alloc(AAVLT_NODE_SIZE)?;
            self.init_node(node, txid);
            let new_root = self.insert_node(self.root(), node, txid)?;
            self.logged_write(self.root_cell, new_root.offset())?;
        }
        let old_head = self.field(node, N_CHAIN);
        // The record is not yet reachable through the tree, so its prev link
        // does not need undo logging; it only becomes meaningful once the
        // chain head below is (atomically) switched to it.
        self.pool.write_u64_nt(record_addr.word(7), old_head);
        self.logged_write(node.word(N_CHAIN), record_addr.offset())?;
        self.logged_write(node.word(N_COUNT), self.field(node, N_COUNT) + 1)?;
        self.finish_op(&deferred)?;
        deferred.clear();
        Ok(())
    }

    /// Removes a transaction from the index (its records are freed by the
    /// caller — the transaction manager owns record memory).
    pub fn remove_txn(&self, txid: u64) -> Result<()> {
        let _op = self.op_lock.lock();
        if self.find_node(txid).is_null() {
            return Ok(());
        }
        let mut deferred = Vec::new();
        let new_root = self.delete_node(self.root(), txid, &mut deferred)?;
        self.logged_write(self.root_cell, new_root.offset())?;
        self.finish_op(&deferred)?;
        Ok(())
    }

    /// Returns `true` if `txid` is indexed.
    pub fn contains(&self, txid: u64) -> bool {
        !self.find_node(txid).is_null()
    }

    /// Head of the record chain (the most recent record) of `txid`.
    pub fn chain_head(&self, txid: u64) -> Option<PAddr> {
        let node = self.find_node(txid);
        if node.is_null() {
            return None;
        }
        let head = self.field(node, N_CHAIN);
        if head == 0 {
            None
        } else {
            Some(PAddr::new(head))
        }
    }

    /// All records of `txid`, most recent first (the order rollback wants).
    pub fn records_of(&self, txid: u64) -> Result<Vec<(PAddr, LogRecord)>> {
        let mut out = Vec::new();
        let mut cur = self.chain_head(txid).unwrap_or(PAddr::NULL);
        while !cur.is_null() {
            let rec = LogRecord::read_from(&self.pool, cur)?;
            let prev = rec.prev;
            out.push((cur, rec));
            cur = prev;
        }
        Ok(out)
    }

    /// Number of records indexed under `txid`.
    pub fn record_count(&self, txid: u64) -> u64 {
        let node = self.find_node(txid);
        if node.is_null() {
            0
        } else {
            self.field(node, N_COUNT)
        }
    }

    /// All indexed transaction ids, in ascending order.
    pub fn txids(&self) -> Vec<u64> {
        let mut out = Vec::new();
        self.inorder(self.root(), &mut out);
        out
    }

    fn inorder(&self, node: PAddr, out: &mut Vec<u64>) {
        if node.is_null() {
            return;
        }
        self.inorder(PAddr::new(self.field(node, N_LEFT)), out);
        out.push(self.field(node, N_KEY));
        self.inorder(PAddr::new(self.field(node, N_RIGHT)), out);
    }

    /// Checks the AVL invariants (sortedness and balance); used by tests.
    pub fn check_invariants(&self) -> bool {
        fn walk(tree: &Aavlt, node: PAddr, lo: Option<u64>, hi: Option<u64>) -> Option<u64> {
            if node.is_null() {
                return Some(0);
            }
            let key = tree.field(node, N_KEY);
            if lo.map(|l| key <= l).unwrap_or(false) || hi.map(|h| key >= h).unwrap_or(false) {
                return None;
            }
            let lh = walk(tree, PAddr::new(tree.field(node, N_LEFT)), lo, Some(key))?;
            let rh = walk(tree, PAddr::new(tree.field(node, N_RIGHT)), Some(key), hi)?;
            if (lh as i64 - rh as i64).abs() > 1 {
                return None;
            }
            let h = 1 + lh.max(rh);
            if h != tree.field(node, N_HEIGHT) {
                return None;
            }
            Some(h)
        }
        walk(self, self.root(), None, None).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RECORD_SIZE;
    use rewind_nvm::PoolConfig;

    fn pool() -> Arc<NvmPool> {
        NvmPool::new(PoolConfig::small())
    }

    fn make_record(pool: &Arc<NvmPool>, lsn: u64, txid: u64) -> PAddr {
        let a = pool.alloc(RECORD_SIZE).unwrap();
        LogRecord::update(lsn, txid, PAddr::new(0x100), 0, lsn).write_to_nt(pool, a);
        a
    }

    #[test]
    fn insert_and_lookup_many_transactions() {
        let p = pool();
        let tree = Aavlt::create(Arc::clone(&p), &RewindConfig::batch()).unwrap();
        assert!(tree.is_empty());
        for txid in [50u64, 20, 80, 10, 30, 70, 90, 25, 35, 1, 2, 3, 4, 5] {
            let r = make_record(&p, txid * 10, txid);
            tree.insert_record(txid, r).unwrap();
        }
        assert!(tree.check_invariants());
        assert_eq!(tree.len(), 14);
        assert!(tree.contains(30));
        assert!(!tree.contains(31));
        let ids = tree.txids();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn record_chains_are_most_recent_first() {
        let p = pool();
        let tree = Aavlt::create(Arc::clone(&p), &RewindConfig::batch()).unwrap();
        for lsn in 1..=5 {
            let r = make_record(&p, lsn, 7);
            tree.insert_record(7, r).unwrap();
        }
        assert_eq!(tree.record_count(7), 5);
        let recs = tree.records_of(7).unwrap();
        let lsns: Vec<u64> = recs.iter().map(|(_, r)| r.lsn).collect();
        assert_eq!(lsns, vec![5, 4, 3, 2, 1]);
        assert!(tree.records_of(99).unwrap().is_empty());
    }

    #[test]
    fn remove_txn_deletes_and_rebalances() {
        let p = pool();
        let tree = Aavlt::create(Arc::clone(&p), &RewindConfig::batch()).unwrap();
        for txid in 1..=30u64 {
            let r = make_record(&p, txid, txid);
            tree.insert_record(txid, r).unwrap();
        }
        for txid in (1..=30u64).step_by(2) {
            tree.remove_txn(txid).unwrap();
        }
        assert!(tree.check_invariants());
        assert_eq!(tree.len(), 15);
        for txid in 1..=30u64 {
            assert_eq!(tree.contains(txid), txid % 2 == 0, "txid {txid}");
        }
        // Removing an absent transaction is a no-op.
        tree.remove_txn(999).unwrap();
        assert_eq!(tree.len(), 15);
    }

    #[test]
    fn tree_survives_power_cycle() {
        let p = pool();
        let cfg = RewindConfig::batch();
        let tree = Aavlt::create(Arc::clone(&p), &cfg).unwrap();
        for txid in 1..=10u64 {
            let r = make_record(&p, txid, txid);
            tree.insert_record(txid, r).unwrap();
        }
        let root = tree.durable_root();
        drop(tree);
        p.power_cycle();
        let tree = Aavlt::attach(Arc::clone(&p), &cfg, root).unwrap();
        assert!(tree.check_invariants());
        assert_eq!(tree.len(), 10);
        assert_eq!(tree.records_of(5).unwrap().len(), 1);
    }

    #[test]
    fn crash_mid_insert_rolls_back_to_consistent_tree() {
        // Sweep crash points through an insert that triggers rebalancing.
        for crash_at in 1..=60u64 {
            let p = pool();
            let cfg = RewindConfig::batch();
            let tree = Aavlt::create(Arc::clone(&p), &cfg).unwrap();
            for txid in [10u64, 20, 30, 40, 50] {
                let r = make_record(&p, txid, txid);
                tree.insert_record(txid, r).unwrap();
            }
            let root = tree.durable_root();
            let r = make_record(&p, 60, 60);
            p.crash_injector().arm_after(crash_at);
            let _ = tree.insert_record(60, r);
            drop(tree);
            p.power_cycle();
            let tree = Aavlt::attach(Arc::clone(&p), &cfg, root).unwrap();
            assert!(
                tree.check_invariants(),
                "crash at {crash_at} violated AVL invariants"
            );
            let n = tree.len();
            assert!(
                n == 5 || n == 6,
                "crash at {crash_at}: unexpected tree size {n}"
            );
            for txid in [10u64, 20, 30, 40, 50] {
                assert!(tree.contains(txid), "crash at {crash_at} lost txid {txid}");
            }
            // The tree must remain usable.
            let r = make_record(&p, 70, 70);
            tree.insert_record(70, r).unwrap();
            assert!(tree.contains(70));
        }
    }

    #[test]
    fn crash_mid_remove_rolls_back_to_consistent_tree() {
        for crash_at in 1..=60u64 {
            let p = pool();
            let cfg = RewindConfig::batch();
            let tree = Aavlt::create(Arc::clone(&p), &cfg).unwrap();
            for txid in 1..=10u64 {
                let r = make_record(&p, txid, txid);
                tree.insert_record(txid, r).unwrap();
            }
            let root = tree.durable_root();
            p.crash_injector().arm_after(crash_at);
            let _ = tree.remove_txn(5);
            drop(tree);
            p.power_cycle();
            let tree = Aavlt::attach(Arc::clone(&p), &cfg, root).unwrap();
            assert!(
                tree.check_invariants(),
                "crash at {crash_at} violated AVL invariants"
            );
            let n = tree.len();
            assert!(n == 9 || n == 10, "crash at {crash_at}: size {n}");
            for txid in (1..=10u64).filter(|t| *t != 5) {
                assert!(tree.contains(txid), "crash at {crash_at} lost txid {txid}");
            }
        }
    }

    #[test]
    fn recover_is_idempotent() {
        let p = pool();
        let cfg = RewindConfig::batch();
        let tree = Aavlt::create(Arc::clone(&p), &cfg).unwrap();
        let r = make_record(&p, 1, 1);
        tree.insert_record(1, r).unwrap();
        assert!(!tree.recover().unwrap(), "nothing pending");
        assert!(!tree.recover().unwrap());
        assert!(tree.contains(1));
    }
}
