//! Crash recovery (Section 4.5 of the paper).
//!
//! Recovery proceeds bottom-up, mirroring the paper's layering: first the log
//! structures recover themselves (the ADLL completes its interrupted
//! operation, the bucketed log rebuilds its volatile state, the AVL index
//! rolls back its interrupted structural operation), then the record contents
//! drive the transaction-level phases:
//!
//! 1. **Analysis** — a forward scan reconstructs the transaction table and
//!    finds the highest LSN / transaction id in use.
//! 2. **Redo** (no-force policy only) — a forward scan re-applies every
//!    logged write (updates *and* compensations), repeating history so that a
//!    crash during an earlier rollback loses nothing.
//! 3. **Undo** — every transaction without an END record is rolled back,
//!    *except* transactions holding a durable PREPARE record: those are in
//!    doubt and must wait for the two-phase-commit coordinator's decision.
//!    The one-layer configuration uses the single backward scan of the
//!    paper's Algorithm 2 (with the `undoMap` used to skip records that an
//!    earlier, interrupted recovery had already compensated); the two-layer
//!    configuration walks each unfinished transaction's record chain through
//!    the AVL index.
//!
//! Finally END records are written for the rolled-back transactions, the
//! transaction table is cleared, and — under the force policy, where every
//! surviving transaction is complete — the whole log is dropped in one step.

use crate::config::Policy;
use crate::record::{LogRecord, RecordType};
use crate::txn::{analyze_records, Backend, RecordLocation, TransactionManager, TxStatus};
use crate::Result;
use rewind_obs::{EventKind, Obs};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;

/// Emits a `RecoveryPhase` event for the phase that just finished and
/// restarts the phase clock (no-op while tracing is disabled).
fn phase_mark(obs: &Obs, phase: u64, t: &mut Option<std::time::Instant>) {
    if let Some(t0) = *t {
        obs.emit(
            EventKind::RecoveryPhase,
            0,
            phase,
            t0.elapsed().as_nanos() as u64,
        );
        *t = obs.clock();
    }
}

/// What a recovery pass did, for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Transactions found already finished (committed or fully rolled back).
    pub finished: u64,
    /// Transactions found *in doubt*: prepared for a two-phase commit with
    /// no decision applied. Recovery neither commits nor rolls these back —
    /// they stay in the transaction table (see
    /// [`TransactionManager::in_doubt`]) until a coordinator resolves them
    /// with `commit_prepared` / `rollback_prepared`.
    pub in_doubt: u64,
    /// Transactions that had to be rolled back by recovery.
    pub rolled_back: u64,
    /// Physical writes re-applied during the redo phase.
    pub redone: u64,
    /// Updates undone during the undo phase.
    pub undone: u64,
    /// Log records scanned during analysis.
    pub scanned: u64,
    /// Whether the log was cleared wholesale at the end (force policy).
    pub log_cleared: bool,
}

impl RecoveryReport {
    /// Component-wise sum (`log_cleared` is AND-ed), for aggregating the
    /// per-shard recovery passes of a partitioned store.
    pub fn merge(&self, other: &RecoveryReport) -> RecoveryReport {
        RecoveryReport {
            finished: self.finished + other.finished,
            in_doubt: self.in_doubt + other.in_doubt,
            rolled_back: self.rolled_back + other.rolled_back,
            redone: self.redone + other.redone,
            undone: self.undone + other.undone,
            scanned: self.scanned + other.scanned,
            log_cleared: self.log_cleared && other.log_cleared,
        }
    }
}

impl TransactionManager {
    /// Runs full crash recovery. Called automatically by
    /// [`TransactionManager::open`] when the pool was not shut down cleanly;
    /// it can also be invoked explicitly and is idempotent — running it on a
    /// consistent log finds nothing to do.
    pub fn recover(&self) -> Result<RecoveryReport> {
        self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
        let mut report = RecoveryReport::default();
        let t_total = self.obs.clock();
        let mut t_phase = t_total;
        self.obs.emit(EventKind::RecoveryStart, 0, 0, 0);

        // Phase 0: the log recovers itself.
        match &self.backend {
            Backend::One(log) => log.recover_structures()?,
            Backend::Two(index) => {
                index.recover()?;
            }
        }
        phase_mark(&self.obs, 0, &mut t_phase);

        // Phase 1: analysis. Besides transaction statuses and counters this
        // rebuilds the volatile per-transaction slot registries (and the
        // CHECKPOINT-marker slots) — the one full scan the registries are
        // allowed to cost.
        let records = self.all_records(true)?;
        report.scanned = records.len() as u64;
        let mut analysis = analyze_records(&records);
        let table = std::mem::take(&mut analysis.statuses);
        self.next_lsn.store(analysis.max_lsn + 1, Ordering::SeqCst);
        self.next_txid
            .store(analysis.max_txid + 1, Ordering::SeqCst);
        {
            let mut t = self.table.lock();
            t.clear();
            for (txid, status) in &table {
                t.insert(*txid, analysis.take_entry(*txid, *status));
            }
        }
        *self.ckpt_slots.lock() = analysis.markers;
        report.finished = table.values().filter(|s| **s == TxStatus::Finished).count() as u64;
        report.in_doubt = table.values().filter(|s| **s == TxStatus::Prepared).count() as u64;
        phase_mark(&self.obs, 1, &mut t_phase);

        // Phase 2: redo (no-force only) — repeat history.
        if self.cfg.policy == Policy::NoForce {
            for (_, _, rec) in &records {
                match rec.rtype {
                    RecordType::Update | RecordType::Clr => {
                        self.pool.write_u64(rec.addr, rec.new);
                        report.redone += 1;
                    }
                    _ => {}
                }
            }
        }
        phase_mark(&self.obs, 2, &mut t_phase);

        // Phase 3: undo all unfinished transactions — except prepared ones,
        // which made a durable promise to hold still until the coordinator's
        // decision arrives.
        let losers: Vec<u64> = table
            .iter()
            .filter(|(_, s)| !matches!(**s, TxStatus::Finished | TxStatus::Prepared))
            .map(|(t, _)| *t)
            .collect();
        report.rolled_back = losers.len() as u64;
        if !losers.is_empty() {
            match &self.backend {
                Backend::One(_) => {
                    report.undone += self.undo_one_layer(&records, &table)?;
                }
                Backend::Two(_) => {
                    report.undone += self.undo_two_layer(&losers)?;
                }
            }
            // Mark completion of every rollback.
            for txid in &losers {
                let mut end = LogRecord::end(self.next_lsn(), *txid);
                self.append_for(*txid, &mut end)?;
                self.set_status(*txid, TxStatus::Finished);
                self.stats.rolled_back.fetch_add(1, Ordering::Relaxed);
            }
        }

        phase_mark(&self.obs, 3, &mut t_phase);

        // Under no-force the data restored by redo/undo lives in the cache;
        // make the recovered image durable before declaring victory.
        if self.cfg.policy == Policy::NoForce {
            self.pool.flush_all();
        }

        // Phase 4: post-recovery log clearing. Under the force policy every
        // transaction is now complete — unless in-doubt prepared
        // transactions survive, whose records must stay in the log until the
        // coordinator's decision arrives. With no in-doubt work the whole
        // log is dropped in one step (much cheaper than record-by-record
        // removal); otherwise finished transactions are cleared one by one
        // through their rebuilt slot registries.
        if self.cfg.policy == Policy::Force {
            match &self.backend {
                Backend::One(log) if report.in_doubt == 0 => {
                    // Process deferred de-allocations of committed work first.
                    for (_, _, rec) in &records {
                        if rec.rtype == RecordType::Delete
                            && table.get(&rec.txid) == Some(&TxStatus::Finished)
                        {
                            self.pool.free(rec.addr, rec.old as usize)?;
                        }
                    }
                    log.clear_all()?;
                    self.persist_root();
                }
                Backend::One(_) => {
                    // Clear every transaction the *live* table now holds as
                    // Finished — the analysis-time snapshot is stale here:
                    // the losers this very pass rolled back reached Finished
                    // only after it was taken, and skipping them would leak
                    // their records into the log forever (Force has no
                    // checkpoint clearing to catch them later).
                    // clear_transaction processes each transaction's DELETE
                    // records itself.
                    let candidates: Vec<(u64, crate::txn::TxHandle)> = self
                        .table
                        .lock()
                        .iter()
                        .map(|(t, h)| (*t, std::sync::Arc::clone(h)))
                        .collect();
                    for (txid, handle) in candidates {
                        if handle.lock().status == TxStatus::Finished {
                            self.clear_transaction(txid, true)?;
                        }
                    }
                }
                Backend::Two(index) => {
                    for txid in index.txids() {
                        if table.get(&txid) == Some(&TxStatus::Prepared) {
                            continue;
                        }
                        self.clear_transaction(txid, true)?;
                    }
                    self.persist_root();
                }
            }
            report.log_cleared = report.in_doubt == 0;
        }

        // Recovery leaves no running transactions behind. Under the force
        // policy finished transactions are gone from the log, so their
        // volatile table entries and the cached checkpoint-marker slots go
        // with them; the two-layer index rediscovers finished transactions
        // itself. Prepared (in-doubt) entries always stay — their rebuilt
        // slot registries are what `commit_prepared` / `rollback_prepared`
        // consume when the coordinator's decision arrives. Under one-layer
        // no-force every other entry is now Finished and keeps its registry
        // so the next checkpoint can clear its records without rescanning.
        if self.cfg.policy == Policy::Force || matches!(self.backend, Backend::Two(_)) {
            self.table
                .lock()
                .retain(|_, h| h.lock().status == TxStatus::Prepared);
            self.ckpt_slots.lock().clear();
        }
        phase_mark(&self.obs, 4, &mut t_phase);
        if let Some(t0) = t_total {
            let ns = t0.elapsed().as_nanos() as u64;
            self.obs.metrics().recovery_ns.record(ns);
            self.obs.emit(EventKind::RecoveryDone, 0, 0, ns);
        }
        *self.last_recovery.lock() = Some(report);
        Ok(report)
    }

    /// Report of the most recent [`TransactionManager::recover`] pass run by
    /// this manager (including the implicit one in
    /// [`TransactionManager::open`]), or `None` if none has run. Multi-pool
    /// front-ends aggregate these per-partition reports into one view.
    pub fn last_recovery(&self) -> Option<RecoveryReport> {
        *self.last_recovery.lock()
    }

    /// The paper's Algorithm 2: a single backward scan that undoes every
    /// unfinished transaction, using `undo_map` to skip records that a
    /// previous, interrupted recovery already compensated.
    fn undo_one_layer(
        &self,
        records: &[(RecordLocation, rewind_nvm::PAddr, LogRecord)],
        table: &HashMap<u64, TxStatus>,
    ) -> Result<u64> {
        let mut undone = 0u64;
        // LSN of the oldest record already compensated, per transaction.
        let mut undo_map: HashMap<u64, u64> = HashMap::new();
        let mut rollback_written: HashSet<u64> = HashSet::new();
        for (_, _, rec) in records.iter().rev() {
            let status = match table.get(&rec.txid) {
                Some(s) => *s,
                None => continue,
            };
            if matches!(status, TxStatus::Finished | TxStatus::Prepared) {
                continue;
            }
            if status == TxStatus::Running && rollback_written.insert(rec.txid) {
                let mut marker = LogRecord::rollback(self.next_lsn(), rec.txid);
                self.append_for(rec.txid, &mut marker)?;
            }
            match rec.rtype {
                RecordType::Clr => {
                    if let std::collections::hash_map::Entry::Vacant(e) = undo_map.entry(rec.txid) {
                        // First (i.e. most recent) CLR of this transaction:
                        // everything at or above the LSN it compensated is
                        // already undone.
                        e.insert(rec.undo_next.offset());
                        if self.cfg.policy == Policy::Force {
                            // Re-apply the most recent compensation: it may
                            // have been created right before the crash,
                            // before its user write reached NVM.
                            self.pool.write_u64_nt(rec.addr, rec.new);
                        }
                    }
                }
                RecordType::Update => {
                    let already_undone = undo_map
                        .get(&rec.txid)
                        .map(|compensated| rec.lsn >= *compensated)
                        .unwrap_or(false);
                    if !already_undone {
                        self.undo_one(rec.txid, rec)?;
                        undone += 1;
                    }
                }
                _ => {}
            }
        }
        Ok(undone)
    }

    /// Per-transaction undo through the AVL index (two-layer configuration).
    fn undo_two_layer(&self, losers: &[u64]) -> Result<u64> {
        let Backend::Two(index) = &self.backend else {
            unreachable!("undo_two_layer called on a one-layer manager");
        };
        let mut undone = 0u64;
        for txid in losers {
            let chain = index.records_of(*txid)?; // newest first
                                                  // Records already undone = number of CLRs written before the
                                                  // crash; the undo order is deterministic (newest update first),
                                                  // so the newest `clr_count` updates are already compensated.
            let clr_count = chain
                .iter()
                .filter(|(_, r)| r.rtype == RecordType::Clr)
                .count();
            if self.cfg.policy == Policy::Force {
                // Redo the most recent CLR to cover a crash between the CLR
                // and its user write.
                if let Some((_, clr)) = chain.iter().find(|(_, r)| r.rtype == RecordType::Clr) {
                    self.pool.write_u64_nt(clr.addr, clr.new);
                }
            }
            let updates: Vec<&LogRecord> = chain
                .iter()
                .map(|(_, r)| r)
                .filter(|r| r.rtype == RecordType::Update)
                .collect();
            for rec in updates.iter().skip(clr_count) {
                self.undo_one(*txid, rec)?;
                undone += 1;
            }
        }
        Ok(undone)
    }
}
