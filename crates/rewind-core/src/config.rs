//! Runtime configuration.
//!
//! The paper explores four configurations (Section 2) arising from two
//! independent choices — the number of logging layers (one or two) and the
//! user-update force policy (force or no-force) — plus three implementations
//! of the basic log structure (Section 3): the Simple doubly-linked list, the
//! Optimized bucketed list and the Batch variant that groups log records per
//! memory fence. [`RewindConfig`] captures all of these knobs together with
//! the tuning parameters the paper calls out (bucket size, records per fence,
//! checkpoint frequency).

/// Number of logging layers (Section 2, "Number of logging layers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LogLayers {
    /// One-layer logging: the recoverable list is the only log structure.
    /// Faster logging, slower selective rollback (linear scan).
    #[default]
    OneLayer,
    /// Two-layer logging: an atomic AVL tree indexes log records by
    /// transaction identifier; the list logs the pending updates of the index
    /// itself. Slower logging, faster selective rollback.
    TwoLayer,
}

/// User-data force policy (Section 2, "Forcing/not forcing user updates").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// No-force: user updates stay in the cache until a checkpoint flushes
    /// them; recovery needs three phases (analysis, redo, undo); log records
    /// of committed transactions are cleared at checkpoints.
    #[default]
    NoForce,
    /// Force: user updates are written with non-temporal stores and are
    /// persistent by commit time; recovery needs only two phases (analysis,
    /// undo); each transaction clears its own records right after commit.
    Force,
}

/// Implementation of the basic recoverable log structure (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LogStructure {
    /// One list node per log record (Section 3.2).
    Simple,
    /// Fixed-size buckets of record pointers chained through the list
    /// (Section 3.3), persisted record-by-record.
    Optimized,
    /// Bucketed log with multiple record pointers persisted per memory fence
    /// and a per-bucket persistence watermark (Section 3.3, "Multiple log
    /// records per cacheline").
    #[default]
    Batch,
}

/// Full configuration of a [`TransactionManager`](crate::TransactionManager).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewindConfig {
    /// One- or two-layer logging.
    pub layers: LogLayers,
    /// Force or no-force user updates.
    pub policy: Policy,
    /// Log structure implementation.
    pub structure: LogStructure,
    /// Number of record slots per bucket (Optimized/Batch). The paper uses
    /// 1,000.
    pub bucket_size: usize,
    /// Log records persisted per memory fence (Batch). The paper derives 8
    /// from 64-byte cachelines and 8-byte pointers and evaluates 8/16/32.
    pub group_size: usize,
    /// If `Some(n)`, a checkpoint is taken automatically after every `n`
    /// appended log records (no-force policy only). `None` disables automatic
    /// checkpoints; they can still be taken explicitly.
    pub checkpoint_every: Option<u64>,
}

impl RewindConfig {
    /// The paper's best-performing configuration for the B+-tree experiments:
    /// one-layer, no-force, Batch log, bucket size 1,000, 8 records per fence,
    /// no automatic checkpoints.
    pub fn batch() -> Self {
        RewindConfig {
            layers: LogLayers::OneLayer,
            policy: Policy::NoForce,
            structure: LogStructure::Batch,
            bucket_size: 1000,
            group_size: 8,
            checkpoint_every: None,
        }
    }

    /// The Simple (node-per-record) configuration.
    pub fn simple() -> Self {
        RewindConfig {
            structure: LogStructure::Simple,
            ..Self::batch()
        }
    }

    /// The Optimized (bucketed, per-record persistence) configuration.
    pub fn optimized() -> Self {
        RewindConfig {
            structure: LogStructure::Optimized,
            ..Self::batch()
        }
    }

    /// Switches to one- or two-layer logging.
    pub fn layers(mut self, layers: LogLayers) -> Self {
        self.layers = layers;
        self
    }

    /// Switches the force policy.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the bucket size (Optimized/Batch).
    pub fn bucket_size(mut self, slots: usize) -> Self {
        self.bucket_size = slots.max(2);
        self
    }

    /// Sets the number of records persisted per fence (Batch).
    pub fn group_size(mut self, records: usize) -> Self {
        self.group_size = records.max(1);
        self
    }

    /// Enables automatic checkpoints every `records` appended log records.
    pub fn checkpoint_every(mut self, records: u64) -> Self {
        self.checkpoint_every = Some(records);
        self
    }

    /// Returns `true` when the configuration uses the two-layer log.
    pub fn is_two_layer(&self) -> bool {
        self.layers == LogLayers::TwoLayer
    }

    /// Returns `true` when the configuration forces user updates.
    pub fn is_force(&self) -> bool {
        self.policy == Policy::Force
    }

    /// A compact fingerprint persisted in the REWIND root so that re-opening
    /// a pool with an incompatible configuration is detected.
    pub fn fingerprint(&self) -> u64 {
        let layers = match self.layers {
            LogLayers::OneLayer => 1u64,
            LogLayers::TwoLayer => 2,
        };
        let policy = match self.policy {
            Policy::NoForce => 1u64,
            Policy::Force => 2,
        };
        let structure = match self.structure {
            LogStructure::Simple => 1u64,
            LogStructure::Optimized => 2,
            LogStructure::Batch => 3,
        };
        (layers << 32) | (policy << 16) | structure
    }

    /// The paper's future-work "autotuning" idea in its simplest form: given
    /// an estimate of how many records from *other* transactions interleave
    /// between the records of one transaction (the paper's "skip records"),
    /// suggest a layer configuration. The crossover observed in Figure 3/4 is
    /// in the 400–600 skip-record range, so the suggestion switches to the
    /// two-layer log above 500.
    pub fn suggest(expected_skip_records: u64) -> Self {
        let base = Self::batch();
        if expected_skip_records > 500 {
            base.layers(LogLayers::TwoLayer)
        } else {
            base
        }
    }
}

impl Default for RewindConfig {
    fn default() -> Self {
        Self::batch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_defaults() {
        let c = RewindConfig::batch();
        assert_eq!(c.structure, LogStructure::Batch);
        assert_eq!(c.bucket_size, 1000);
        assert_eq!(c.group_size, 8);
        assert_eq!(c.layers, LogLayers::OneLayer);
        assert_eq!(c.policy, Policy::NoForce);
        assert_eq!(RewindConfig::simple().structure, LogStructure::Simple);
        assert_eq!(RewindConfig::optimized().structure, LogStructure::Optimized);
        assert_eq!(RewindConfig::default(), RewindConfig::batch());
    }

    #[test]
    fn builders_adjust_fields_and_clamp() {
        let c = RewindConfig::batch()
            .layers(LogLayers::TwoLayer)
            .policy(Policy::Force)
            .bucket_size(1)
            .group_size(0)
            .checkpoint_every(5000);
        assert!(c.is_two_layer());
        assert!(c.is_force());
        assert_eq!(c.bucket_size, 2, "bucket size is clamped to at least 2");
        assert_eq!(c.group_size, 1, "group size is clamped to at least 1");
        assert_eq!(c.checkpoint_every, Some(5000));
    }

    #[test]
    fn fingerprints_distinguish_configurations() {
        let a = RewindConfig::batch().fingerprint();
        let b = RewindConfig::batch()
            .layers(LogLayers::TwoLayer)
            .fingerprint();
        let c = RewindConfig::batch().policy(Policy::Force).fingerprint();
        let d = RewindConfig::simple().fingerprint();
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn suggestion_crosses_over_at_500_skip_records() {
        assert_eq!(RewindConfig::suggest(100).layers, LogLayers::OneLayer);
        assert_eq!(RewindConfig::suggest(501).layers, LogLayers::TwoLayer);
    }
}
