//! Log checkpointing (Section 4.6 of the paper).
//!
//! Keeping the log small matters twice over in REWIND: NVM capacity is more
//! precious than disk, and the one-layer configuration pays for every extra
//! record on each linear scan. Which clearing mechanism runs depends on the
//! force policy:
//!
//! * **Force** — each transaction clears its own records right after
//!   commit/rollback (implemented in `TransactionManager::commit` /
//!   `rollback`); an explicit checkpoint is then just a cache flush.
//! * **No-force** — records of finished transactions are removed at
//!   *cache-consistent checkpoints*: a CHECKPOINT record marks the cut-off,
//!   the whole cache is flushed (making every user update up to that point
//!   persistent), and only then are the records of finished transactions
//!   removed — END records last, so that an interrupted clearing pass is
//!   simply repeated on the next attempt. Concurrent transactions may keep
//!   appending while the checkpoint runs, because appends only touch the log
//!   tail while clearing removes records from the middle.
//!
//! The one-layer clearing pass consumes the per-transaction slot registries
//! (plus the cached CHECKPOINT-marker slots) rather than rescanning the whole
//! log, so a checkpoint costs O(records actually cleared), not O(log size).

use crate::config::Policy;
use crate::record::RecordType;
use crate::txn::{Backend, SlotRef, TransactionManager, TxHandle, TxId, TxStatus};
use crate::Result;
use std::sync::atomic::Ordering;
use std::sync::Arc;

impl TransactionManager {
    /// Takes a checkpoint. Under the force policy this only flushes the
    /// cache; under no-force it also clears the log records of every finished
    /// transaction and performs their deferred de-allocations.
    ///
    /// Returns the number of log records removed.
    pub fn checkpoint(&self) -> Result<u64> {
        let _guard = self.checkpoint_lock.lock();
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.records_since_checkpoint.store(0, Ordering::Relaxed);

        if self.cfg.policy == Policy::Force {
            self.pool.flush_all();
            return Ok(0);
        }

        let mut removed = 0u64;
        match &self.backend {
            Backend::One(log) => {
                // 1. Mark the cut-off point *before* flushing: records after
                //    the marker may not be persistent yet and must survive.
                let ckpt = crate::record::LogRecord::checkpoint(self.next_lsn());
                let ckpt_lsn = ckpt.lsn;
                let (marker_addr, marker_slot) = log.append(&ckpt)?;
                self.ckpt_slots.lock().push(SlotRef {
                    slot: marker_slot,
                    addr: marker_addr,
                    rtype: RecordType::Checkpoint,
                    lsn: ckpt_lsn,
                });
                log.flush_pending()?;

                // 2. Make every pending write persistent ("cache-consistent"
                //    checkpoint): user data and any batch-buffered records.
                self.pool.flush_all();

                // 3. Clear the registered records of finished transactions up
                //    to the cut-off, END records last; honour DELETE records.
                //    Records past the cut-off stay registered (and their
                //    entry stays in the table) for the next checkpoint. The
                //    handles are cloned under the table lock but their
                //    mutexes are only taken after it is released, so
                //    concurrent begin/commit never stalls behind this pass.
                let candidates: Vec<(TxId, TxHandle)> = self
                    .table
                    .lock()
                    .iter()
                    .map(|(t, h)| (*t, Arc::clone(h)))
                    .collect();
                let mut fully_cleared = Vec::new();
                for (txid, handle) in &candidates {
                    let clear_now: Vec<SlotRef> = {
                        let mut e = handle.lock();
                        if e.status != TxStatus::Finished {
                            continue;
                        }
                        let (now, keep) = e.slots.drain(..).partition(|r| r.lsn <= ckpt_lsn);
                        e.slots = keep;
                        now
                    };
                    let n = clear_now.len() as u64;
                    self.clear_registered_slots(log, handle, clear_now, true)?;
                    removed += n;
                    if handle.lock().slots.is_empty() {
                        fully_cleared.push(*txid);
                    }
                }
                // Superseded (and the current) checkpoint markers go last,
                // with the END records, once the clearing pass completed. On
                // a mid-batch error the unprocessed markers are pushed back
                // so a later checkpoint retries them.
                let markers: Vec<SlotRef> = {
                    let mut g = self.ckpt_slots.lock();
                    let (now, keep) = g.drain(..).partition(|r| r.lsn <= ckpt_lsn);
                    *g = keep;
                    now
                };
                for (i, m) in markers.iter().enumerate() {
                    if let Err(e) = log.clear_slot(m.slot) {
                        self.ckpt_slots.lock().extend_from_slice(&markers[i..]);
                        return Err(e);
                    }
                    removed += 1;
                }
                // Finished transactions are gone from the log; drop their
                // volatile table entries too.
                let mut table = self.table.lock();
                for txid in fully_cleared {
                    table.remove(&txid);
                }
            }
            Backend::Two(index) => {
                self.pool.flush_all();
                for txid in index.txids() {
                    let chain = index.records_of(txid)?;
                    let has_end = chain.iter().any(|(_, r)| r.rtype == RecordType::End);
                    if !has_end {
                        continue;
                    }
                    removed += chain.len() as u64;
                    self.clear_transaction(txid, true)?;
                }
            }
        }
        Ok(removed)
    }
}
