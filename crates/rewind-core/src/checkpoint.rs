//! Log checkpointing (Section 4.6 of the paper).
//!
//! Keeping the log small matters twice over in REWIND: NVM capacity is more
//! precious than disk, and the one-layer configuration pays for every extra
//! record on each linear scan. Which clearing mechanism runs depends on the
//! force policy:
//!
//! * **Force** — each transaction clears its own records right after
//!   commit/rollback (implemented in `TransactionManager::commit` /
//!   `rollback`); an explicit checkpoint is then just a cache flush.
//! * **No-force** — records of finished transactions are removed at
//!   *cache-consistent checkpoints*: a CHECKPOINT record marks the cut-off,
//!   the whole cache is flushed (making every user update up to that point
//!   persistent), and only then are the records of finished transactions
//!   removed — END records last, so that an interrupted clearing pass is
//!   simply repeated on the next attempt. Concurrent transactions may keep
//!   appending while the checkpoint runs, because appends only touch the log
//!   tail while clearing removes records from the middle.

use crate::config::Policy;
use crate::record::RecordType;
use crate::txn::{Backend, TransactionManager};
use crate::Result;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;

impl TransactionManager {
    /// Takes a checkpoint. Under the force policy this only flushes the
    /// cache; under no-force it also clears the log records of every finished
    /// transaction and performs their deferred de-allocations.
    ///
    /// Returns the number of log records removed.
    pub fn checkpoint(&self) -> Result<u64> {
        let _guard = self.checkpoint_lock.lock();
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.records_since_checkpoint.store(0, Ordering::Relaxed);

        if self.cfg.policy == Policy::Force {
            self.pool.flush_all();
            return Ok(0);
        }

        let mut removed = 0u64;
        match &self.backend {
            Backend::One(log) => {
                // 1. Mark the cut-off point *before* flushing: records after
                //    the marker may not be persistent yet and must survive.
                let ckpt = crate::record::LogRecord::checkpoint(self.next_lsn());
                let ckpt_lsn = ckpt.lsn;
                log.append(&ckpt)?;
                log.flush_pending()?;

                // 2. Make every pending write persistent ("cache-consistent"
                //    checkpoint): user data and any batch-buffered records.
                self.pool.flush_all();

                // 3. Clear records of finished transactions up to the
                //    cut-off, END records last; honour DELETE records.
                let entries = log.scan(false)?;
                let mut finished: HashSet<u64> = HashSet::new();
                let mut seen: HashMap<u64, bool> = HashMap::new();
                for e in &entries {
                    if e.record.rtype == RecordType::End {
                        seen.insert(e.record.txid, true);
                    } else {
                        seen.entry(e.record.txid).or_insert(false);
                    }
                }
                for (txid, has_end) in &seen {
                    if *has_end {
                        finished.insert(*txid);
                    }
                }
                let mut end_slots = Vec::new();
                for e in &entries {
                    if e.record.lsn > ckpt_lsn {
                        continue;
                    }
                    if e.record.rtype == RecordType::Checkpoint {
                        // Old (and the current) checkpoint markers can go as
                        // soon as the clearing pass completes; collect them
                        // with the END records so they are removed last.
                        end_slots.push(e.slot);
                        continue;
                    }
                    if !finished.contains(&e.record.txid) {
                        continue;
                    }
                    if e.record.rtype == RecordType::End {
                        end_slots.push(e.slot);
                        continue;
                    }
                    if e.record.rtype == RecordType::Delete {
                        self.pool.free(e.record.addr, e.record.old as usize)?;
                    }
                    log.clear_slot(e.slot)?;
                    removed += 1;
                }
                for slot in end_slots {
                    log.clear_slot(slot)?;
                    removed += 1;
                }
                // Finished transactions are gone from the log; drop their
                // volatile table entries too.
                let mut table = self.table.lock();
                for txid in finished {
                    table.remove(&txid);
                }
            }
            Backend::Two(index) => {
                self.pool.flush_all();
                for txid in index.txids() {
                    let chain = index.records_of(txid)?;
                    let has_end = chain.iter().any(|(_, r)| r.rtype == RecordType::End);
                    if !has_end {
                        continue;
                    }
                    removed += chain.len() as u64;
                    self.clear_transaction(txid, true)?;
                }
            }
        }
        Ok(removed)
    }
}
