//! Log records.
//!
//! REWIND uses physical logging: every record describes one word-granular
//! update (old value, new value, target address) plus the ARIES-style
//! bookkeeping fields (LSN, transaction id, record type, per-transaction
//! back-chain and, for compensation records, the address of the next record
//! to undo). A record occupies exactly one cacheline (64 bytes / 8 words) in
//! NVM so that writing it never straddles lines.

use crate::{Result, RewindError};
use rewind_nvm::{NvmPool, PAddr};

/// Size of a serialized log record in bytes (one cacheline).
pub const RECORD_SIZE: usize = 64;

/// The kind of a log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// A physical update of one 8-byte word of user data.
    Update,
    /// A compensation log record written while undoing an `Update`.
    Clr,
    /// Marks the completion of a commit or of a rollback.
    End,
    /// Deferred de-allocation of a block of persistent memory.
    Delete,
    /// Marks a cache-consistent checkpoint (no-force policy).
    Checkpoint,
    /// Marks the start of a rollback (written by recovery when it finds an
    /// unfinished transaction, so that a crash during recovery resumes the
    /// rollback instead of restarting it).
    Rollback,
    /// Marks a transaction as *prepared* in a two-phase commit: all of its
    /// updates are durably logged and the transaction may neither commit nor
    /// roll back until the coordinator's decision is known. The record
    /// carries the coordinator's global transaction id so recovery can match
    /// an in-doubt local transaction to a persisted commit decision.
    Prepare,
}

impl RecordType {
    fn to_u64(self) -> u64 {
        match self {
            RecordType::Update => 1,
            RecordType::Clr => 2,
            RecordType::End => 3,
            RecordType::Delete => 4,
            RecordType::Checkpoint => 5,
            RecordType::Rollback => 6,
            RecordType::Prepare => 7,
        }
    }

    fn from_u64(v: u64) -> Result<Self> {
        Ok(match v {
            1 => RecordType::Update,
            2 => RecordType::Clr,
            3 => RecordType::End,
            4 => RecordType::Delete,
            5 => RecordType::Checkpoint,
            6 => RecordType::Rollback,
            7 => RecordType::Prepare,
            other => {
                return Err(RewindError::CorruptLog(format!(
                    "unknown record type {other}"
                )))
            }
        })
    }
}

/// An in-memory (volatile) view of one log record.
///
/// The persistent layout is eight consecutive 8-byte words:
/// `lsn, txid, type, addr, old, new, undo_next, prev`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Log sequence number; unique and monotonically increasing.
    pub lsn: u64,
    /// Transaction that produced the record.
    pub txid: u64,
    /// Record type.
    pub rtype: RecordType,
    /// Target persistent address (UPDATE/CLR: the word updated; DELETE: the
    /// block to free).
    pub addr: PAddr,
    /// Before-image (UPDATE), or the block size (DELETE).
    pub old: u64,
    /// After-image (UPDATE), or the value restored by a CLR.
    pub new: u64,
    /// For CLRs: persistent address of the next record of this transaction to
    /// undo (the paper's `undoNextLogID`). Null otherwise.
    pub undo_next: PAddr,
    /// Persistent address of the previous record of the same transaction
    /// (back-chain, maintained by the two-layer configuration). Null when the
    /// one-layer configuration does not track it.
    pub prev: PAddr,
}

impl LogRecord {
    /// Creates an UPDATE record.
    pub fn update(lsn: u64, txid: u64, addr: PAddr, old: u64, new: u64) -> Self {
        LogRecord {
            lsn,
            txid,
            rtype: RecordType::Update,
            addr,
            old,
            new,
            undo_next: PAddr::NULL,
            prev: PAddr::NULL,
        }
    }

    /// Creates a CLR that restores `restored` at `addr` and points at the
    /// next record to undo.
    pub fn clr(lsn: u64, txid: u64, addr: PAddr, restored: u64, undo_next: PAddr) -> Self {
        LogRecord {
            lsn,
            txid,
            rtype: RecordType::Clr,
            addr,
            old: 0,
            new: restored,
            undo_next,
            prev: PAddr::NULL,
        }
    }

    /// Creates an END record for `txid`.
    pub fn end(lsn: u64, txid: u64) -> Self {
        LogRecord {
            lsn,
            txid,
            rtype: RecordType::End,
            addr: PAddr::NULL,
            old: 0,
            new: 0,
            undo_next: PAddr::NULL,
            prev: PAddr::NULL,
        }
    }

    /// Creates a DELETE (deferred de-allocation) record for `size` bytes at
    /// `addr`.
    pub fn delete(lsn: u64, txid: u64, addr: PAddr, size: u64) -> Self {
        LogRecord {
            lsn,
            txid,
            rtype: RecordType::Delete,
            addr,
            old: size,
            new: 0,
            undo_next: PAddr::NULL,
            prev: PAddr::NULL,
        }
    }

    /// Creates a CHECKPOINT record.
    pub fn checkpoint(lsn: u64) -> Self {
        LogRecord {
            lsn,
            txid: 0,
            rtype: RecordType::Checkpoint,
            addr: PAddr::NULL,
            old: 0,
            new: 0,
            undo_next: PAddr::NULL,
            prev: PAddr::NULL,
        }
    }

    /// Creates a PREPARE record for `txid`, carrying the coordinator's
    /// global transaction id (stored in the `old` field).
    pub fn prepare(lsn: u64, txid: u64, gtid: u64) -> Self {
        LogRecord {
            lsn,
            txid,
            rtype: RecordType::Prepare,
            addr: PAddr::NULL,
            old: gtid,
            new: 0,
            undo_next: PAddr::NULL,
            prev: PAddr::NULL,
        }
    }

    /// The coordinator's global transaction id carried by a PREPARE record.
    pub fn gtid(&self) -> u64 {
        debug_assert_eq!(self.rtype, RecordType::Prepare);
        self.old
    }

    /// Creates a ROLLBACK marker for `txid`.
    pub fn rollback(lsn: u64, txid: u64) -> Self {
        LogRecord {
            lsn,
            txid,
            rtype: RecordType::Rollback,
            addr: PAddr::NULL,
            old: 0,
            new: 0,
            undo_next: PAddr::NULL,
            prev: PAddr::NULL,
        }
    }

    /// Returns `true` for record types that terminate a transaction's undo
    /// work (END).
    pub fn finishes_transaction(&self) -> bool {
        self.rtype == RecordType::End
    }

    /// Whether this record describes work that must be undone when the
    /// transaction aborts.
    pub fn is_undoable(&self) -> bool {
        self.rtype == RecordType::Update
    }

    /// Serializes the record into NVM at `addr` using ordinary stores (the
    /// caller decides how to persist it: flush + fence, or the Batch group
    /// protocol).
    pub fn write_to(&self, pool: &NvmPool, addr: PAddr) {
        pool.write_u64(addr.word(0), self.lsn);
        pool.write_u64(addr.word(1), self.txid);
        pool.write_u64(addr.word(2), self.rtype.to_u64());
        pool.write_u64(addr.word(3), self.addr.offset());
        pool.write_u64(addr.word(4), self.old);
        pool.write_u64(addr.word(5), self.new);
        pool.write_u64(addr.word(6), self.undo_next.offset());
        pool.write_u64(addr.word(7), self.prev.offset());
    }

    /// Serializes the record into NVM at `addr` using non-temporal stores
    /// (persistent immediately; used by the Simple and Optimized logs).
    pub fn write_to_nt(&self, pool: &NvmPool, addr: PAddr) {
        pool.write_u64_nt(addr.word(0), self.lsn);
        pool.write_u64_nt(addr.word(1), self.txid);
        pool.write_u64_nt(addr.word(2), self.rtype.to_u64());
        pool.write_u64_nt(addr.word(3), self.addr.offset());
        pool.write_u64_nt(addr.word(4), self.old);
        pool.write_u64_nt(addr.word(5), self.new);
        pool.write_u64_nt(addr.word(6), self.undo_next.offset());
        pool.write_u64_nt(addr.word(7), self.prev.offset());
    }

    /// Deserializes a record from NVM (volatile view).
    pub fn read_from(pool: &NvmPool, addr: PAddr) -> Result<Self> {
        Ok(LogRecord {
            lsn: pool.read_u64(addr.word(0)),
            txid: pool.read_u64(addr.word(1)),
            rtype: RecordType::from_u64(pool.read_u64(addr.word(2)))?,
            addr: PAddr::new(pool.read_u64(addr.word(3))),
            old: pool.read_u64(addr.word(4)),
            new: pool.read_u64(addr.word(5)),
            undo_next: PAddr::new(pool.read_u64(addr.word(6))),
            prev: PAddr::new(pool.read_u64(addr.word(7))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_nvm::PoolConfig;

    #[test]
    fn record_type_roundtrip() {
        for t in [
            RecordType::Update,
            RecordType::Clr,
            RecordType::End,
            RecordType::Delete,
            RecordType::Checkpoint,
            RecordType::Rollback,
            RecordType::Prepare,
        ] {
            assert_eq!(RecordType::from_u64(t.to_u64()).unwrap(), t);
        }
        assert!(RecordType::from_u64(0).is_err());
        assert!(RecordType::from_u64(99).is_err());
    }

    #[test]
    fn constructors_set_expected_fields() {
        let u = LogRecord::update(1, 7, PAddr::new(0x100), 3, 4);
        assert_eq!(u.rtype, RecordType::Update);
        assert!(u.is_undoable());
        assert!(!u.finishes_transaction());

        let c = LogRecord::clr(2, 7, PAddr::new(0x100), 3, PAddr::new(0x40));
        assert_eq!(c.new, 3);
        assert_eq!(c.undo_next, PAddr::new(0x40));
        assert!(!c.is_undoable());

        let e = LogRecord::end(3, 7);
        assert!(e.finishes_transaction());

        let d = LogRecord::delete(4, 7, PAddr::new(0x200), 64);
        assert_eq!(d.old, 64);

        assert_eq!(LogRecord::checkpoint(5).txid, 0);
        assert_eq!(LogRecord::rollback(6, 7).rtype, RecordType::Rollback);

        let p = LogRecord::prepare(7, 9, 0xfeed);
        assert_eq!(p.rtype, RecordType::Prepare);
        assert_eq!(p.gtid(), 0xfeed);
        assert!(!p.is_undoable());
        assert!(!p.finishes_transaction());
    }

    #[test]
    fn nvm_serialization_roundtrip() {
        let pool = NvmPool::new(PoolConfig::small());
        let addr = pool.alloc(RECORD_SIZE).unwrap();
        let rec = LogRecord {
            lsn: 42,
            txid: 9,
            rtype: RecordType::Clr,
            addr: PAddr::new(0x1000),
            old: 11,
            new: 22,
            undo_next: PAddr::new(0x2000),
            prev: PAddr::new(0x3000),
        };
        rec.write_to(&pool, addr);
        let back = LogRecord::read_from(&pool, addr).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn nt_serialization_survives_power_cycle() {
        let pool = NvmPool::new(PoolConfig::small());
        let addr = pool.alloc(RECORD_SIZE).unwrap();
        let rec = LogRecord::update(1, 2, PAddr::new(0x500), 10, 20);
        rec.write_to_nt(&pool, addr);
        pool.power_cycle();
        assert_eq!(LogRecord::read_from(&pool, addr).unwrap(), rec);
    }

    #[test]
    fn regular_serialization_lost_without_flush() {
        let pool = NvmPool::new(PoolConfig::small());
        let addr = pool.alloc(RECORD_SIZE).unwrap();
        LogRecord::update(1, 2, PAddr::new(0x500), 10, 20).write_to(&pool, addr);
        pool.power_cycle();
        // The record decodes as all-zero words, which is an invalid type.
        assert!(LogRecord::read_from(&pool, addr).is_err());
    }
}
