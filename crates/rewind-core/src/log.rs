//! The recoverable log: a uniform interface over the three log structures.
//!
//! * **Simple** — one ADLL node per log record (Section 3.2).
//! * **Optimized** — bucketed record pointers, each insert persisted with one
//!   non-temporal store + fence (Section 3.3).
//! * **Batch** — bucketed record pointers persisted in groups of
//!   `group_size` with one fence per group and a per-bucket persistence
//!   watermark (Section 3.3, "Multiple log records per cacheline").
//!
//! The log owns a short critical section (a `parking_lot::Mutex`) that
//! serializes structural operations — the paper's fine-grained, record-level
//! latching. Record payloads themselves are written outside that critical
//! section.
//!
//! A [`SlotId`] identifies where a record sits (a list node for Simple, a
//! `(bucket, cell)` pair for the bucketed variants) so that the transaction
//! manager can clear individual records during commit-time clearing and
//! checkpoints.

use crate::adll::Adll;
use crate::bucket::{Bucket, GAP};
use crate::config::{LogStructure, RewindConfig};
use crate::record::{LogRecord, RecordType, RECORD_SIZE};
use crate::Result;
use parking_lot::Mutex;
use rewind_nvm::{NvmPool, PAddr};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies the physical location of a log record inside the log so it can
/// be cleared later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotId {
    /// Simple log: the ADLL node whose element is the record.
    Node(PAddr),
    /// Bucketed log: the bucket and the cell index within it.
    Cell {
        /// Bucket address.
        bucket: PAddr,
        /// Cell index within the bucket.
        cell: usize,
    },
}

/// One entry returned by a log scan.
#[derive(Debug, Clone, Copy)]
pub struct LogEntry {
    /// Where the record lives (for later clearing).
    pub slot: SlotId,
    /// Address of the record payload.
    pub record_addr: PAddr,
    /// Decoded record.
    pub record: LogRecord,
}

/// Volatile per-bucket bookkeeping: the live-record count plus a back-pointer
/// to the ADLL node carrying the bucket, so that unlinking an emptied bucket
/// is O(1) instead of a linear search through the list.
#[derive(Debug, Clone, Copy)]
struct BucketRef {
    /// Live (non-gap) records in the bucket.
    live: usize,
    /// The ADLL node whose element is this bucket.
    node: PAddr,
}

/// Volatile bookkeeping for the bucketed variants.
#[derive(Debug, Default)]
struct BucketState {
    /// Bucket currently receiving inserts (tail of the ADLL).
    current: Option<Bucket>,
    /// Next free cell in the current bucket.
    next_cell: usize,
    /// First cell of the current batch group not yet covered by a group
    /// persist (Batch only).
    group_start: usize,
    /// Per-bucket state, keyed by bucket address.
    occupancy: HashMap<u64, BucketRef>,
}

#[derive(Debug)]
struct LogInner {
    /// The underlying atomic doubly-linked list. Swapped wholesale by
    /// [`RecoverableLog::clear_all`].
    adll: Adll,
    buckets: BucketState,
    /// Number of records currently reachable in the log (volatile count).
    live_records: u64,
    /// Total records appended since the log was created/attached.
    appended: u64,
}

/// The recoverable log.
#[derive(Debug)]
pub struct RecoverableLog {
    pool: Arc<NvmPool>,
    structure: LogStructure,
    bucket_size: usize,
    group_size: usize,
    /// Cached copy of the ADLL header address, readable without taking the
    /// inner mutex (`header()` runs on every `persist_root`). Updated only
    /// by [`RecoverableLog::clear_all`], which swaps the list wholesale.
    header: AtomicU64,
    inner: Mutex<LogInner>,
    /// Observability handle: group-boundary trace events. Disabled unless
    /// installed via [`RecoverableLog::with_obs`].
    obs: rewind_obs::Obs,
}

impl RecoverableLog {
    /// Creates a fresh log in `pool` according to `cfg`.
    pub fn create(pool: Arc<NvmPool>, cfg: &RewindConfig) -> Result<Self> {
        let adll = Adll::create(Arc::clone(&pool))?;
        Ok(RecoverableLog {
            pool,
            structure: cfg.structure,
            bucket_size: cfg.bucket_size,
            group_size: cfg.group_size,
            header: AtomicU64::new(adll.header().offset()),
            inner: Mutex::new(LogInner {
                adll,
                buckets: BucketState::default(),
                live_records: 0,
                appended: 0,
            }),
            obs: rewind_obs::Obs::disabled(),
        })
    }

    /// Installs an observability handle (builder-style, before the log is
    /// shared): Batch group boundaries emit `LogGroupSeal` events into it.
    pub(crate) fn with_obs(mut self, obs: rewind_obs::Obs) -> Self {
        self.obs = obs;
        self
    }

    /// Re-attaches to a log whose ADLL header lives at `header` and rebuilds
    /// all volatile state (this is the log part of the analysis phase).
    pub fn attach(pool: Arc<NvmPool>, cfg: &RewindConfig, header: PAddr) -> Result<Self> {
        let adll = Adll::attach(Arc::clone(&pool), header);
        let log = RecoverableLog {
            pool,
            structure: cfg.structure,
            bucket_size: cfg.bucket_size,
            group_size: cfg.group_size,
            header: AtomicU64::new(header.offset()),
            inner: Mutex::new(LogInner {
                adll,
                buckets: BucketState::default(),
                live_records: 0,
                appended: 0,
            }),
            obs: rewind_obs::Obs::disabled(),
        };
        log.recover_structures()?;
        Ok(log)
    }

    /// Address of the durable ADLL header; store it in the REWIND root.
    /// Served from a volatile cache — no lock taken.
    pub fn header(&self) -> PAddr {
        PAddr::new(self.header.load(Ordering::Acquire))
    }

    /// The pool this log lives in.
    pub fn pool(&self) -> &Arc<NvmPool> {
        &self.pool
    }

    /// The log structure variant in use.
    pub fn structure(&self) -> LogStructure {
        self.structure
    }

    /// Number of live (not yet cleared) records.
    pub fn len(&self) -> u64 {
        self.inner.lock().live_records
    }

    /// Returns `true` if the log holds no live records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records appended over the lifetime of this handle.
    pub fn appended(&self) -> u64 {
        self.inner.lock().appended
    }

    // ------------------------------------------------------------------
    // Append
    // ------------------------------------------------------------------

    /// Appends `record` to the log and guarantees it is persistent (or, for
    /// the Batch variant, that it will be persistent no later than the next
    /// group boundary / END record — which is exactly the paper's guarantee,
    /// since recovery only trusts records below the persistent watermark).
    ///
    /// Returns the record's address and slot.
    pub fn append(&self, record: &LogRecord) -> Result<(PAddr, SlotId)> {
        let rec_addr = self.pool.alloc(RECORD_SIZE)?;
        match self.structure {
            LogStructure::Simple => {
                // Record fields first, then a fence, then the atomic node
                // append: the log applies WAL to itself.
                record.write_to_nt(&self.pool, rec_addr);
                self.pool.sfence();
                let mut inner = self.inner.lock();
                let node = inner.adll.append(rec_addr)?;
                inner.live_records += 1;
                inner.appended += 1;
                Ok((rec_addr, SlotId::Node(node)))
            }
            LogStructure::Optimized => {
                record.write_to_nt(&self.pool, rec_addr);
                self.pool.sfence();
                let mut inner = self.inner.lock();
                let (bucket, cell) = self.reserve_cell(&mut inner)?;
                bucket.set_cell_nt(&self.pool, cell, rec_addr);
                self.pool.sfence();
                inner
                    .buckets
                    .occupancy
                    .get_mut(&bucket.addr.offset())
                    .expect("current bucket has an occupancy entry")
                    .live += 1;
                inner.live_records += 1;
                inner.appended += 1;
                Ok((
                    rec_addr,
                    SlotId::Cell {
                        bucket: bucket.addr,
                        cell,
                    },
                ))
            }
            LogStructure::Batch => {
                // Ordinary stores; persistence deferred to the group flush.
                record.write_to(&self.pool, rec_addr);
                let mut inner = self.inner.lock();
                let (bucket, cell) = self.reserve_cell(&mut inner)?;
                bucket.set_cell(&self.pool, cell, rec_addr);
                inner
                    .buckets
                    .occupancy
                    .get_mut(&bucket.addr.offset())
                    .expect("current bucket has an occupancy entry")
                    .live += 1;
                inner.live_records += 1;
                inner.appended += 1;
                // Group boundary, bucket boundary or END record: flush now.
                let group_end = cell + 1;
                let group_full = group_end - inner.buckets.group_start >= self.group_size;
                let bucket_full = group_end >= self.bucket_size;
                let is_end = record.rtype == RecordType::End;
                if group_full || bucket_full || is_end {
                    self.obs.emit(
                        rewind_obs::EventKind::LogGroupSeal,
                        0,
                        (group_end - inner.buckets.group_start) as u64,
                        0,
                    );
                    bucket.persist_group(&self.pool, inner.buckets.group_start, group_end);
                    inner.buckets.group_start = group_end;
                }
                Ok((
                    rec_addr,
                    SlotId::Cell {
                        bucket: bucket.addr,
                        cell,
                    },
                ))
            }
        }
    }

    /// Forces any pending Batch group to NVM. The transaction manager calls
    /// this before letting a *forced* user write proceed so that a log record
    /// can never be overtaken by the write it covers.
    pub fn flush_pending(&self) -> Result<()> {
        if self.structure != LogStructure::Batch {
            return Ok(());
        }
        let mut inner = self.inner.lock();
        if let Some(bucket) = inner.buckets.current {
            let end = inner.buckets.next_cell;
            if end > inner.buckets.group_start {
                self.obs.emit(
                    rewind_obs::EventKind::LogGroupSeal,
                    0,
                    (end - inner.buckets.group_start) as u64,
                    0,
                );
                bucket.persist_group(&self.pool, inner.buckets.group_start, end);
                inner.buckets.group_start = end;
            }
        }
        Ok(())
    }

    /// Reserves the next free cell, appending a new bucket when necessary.
    fn reserve_cell(&self, inner: &mut LogInner) -> Result<(Bucket, usize)> {
        let need_new = match inner.buckets.current {
            None => true,
            Some(_) => inner.buckets.next_cell >= self.bucket_size,
        };
        if need_new {
            let bucket = Bucket::create(&self.pool, self.bucket_size)?;
            let node = inner.adll.append(bucket.addr)?;
            inner.buckets.current = Some(bucket);
            inner.buckets.next_cell = 0;
            inner.buckets.group_start = 0;
            inner
                .buckets
                .occupancy
                .insert(bucket.addr.offset(), BucketRef { live: 0, node });
        }
        let bucket = inner.buckets.current.expect("current bucket must exist");
        let cell = inner.buckets.next_cell;
        inner.buckets.next_cell = cell + 1;
        Ok((bucket, cell))
    }

    // ------------------------------------------------------------------
    // Scanning
    // ------------------------------------------------------------------

    /// Returns all live records in log order (oldest first).
    ///
    /// `trust_watermark` should be `true` when scanning after a crash with
    /// the Batch structure (only records below the persistent watermark are
    /// trusted); during normal operation everything in the volatile view is
    /// valid.
    pub fn scan(&self, trust_watermark: bool) -> Result<Vec<LogEntry>> {
        let inner = self.inner.lock();
        self.scan_locked(&inner, trust_watermark)
    }

    fn scan_locked(&self, inner: &LogInner, trust_watermark: bool) -> Result<Vec<LogEntry>> {
        let mut out = Vec::new();
        match self.structure {
            LogStructure::Simple => {
                for node in inner.adll.iter() {
                    let rec_addr = inner.adll.element(node);
                    if rec_addr.is_null() {
                        continue;
                    }
                    let record = LogRecord::read_from(&self.pool, rec_addr)?;
                    out.push(LogEntry {
                        slot: SlotId::Node(node),
                        record_addr: rec_addr,
                        record,
                    });
                }
            }
            LogStructure::Optimized | LogStructure::Batch => {
                let trust = trust_watermark && self.structure == LogStructure::Batch;
                for node in inner.adll.iter() {
                    let bucket = Bucket::attach(inner.adll.element(node));
                    let capacity = bucket.capacity(&self.pool);
                    let limit = if trust {
                        bucket.last_persistent(&self.pool).min(capacity)
                    } else {
                        capacity
                    };
                    for cell in 0..limit {
                        let v = bucket.cell(&self.pool, cell);
                        if v == 0 || v == GAP {
                            continue;
                        }
                        let rec_addr = PAddr::new(v);
                        let record = LogRecord::read_from(&self.pool, rec_addr)?;
                        out.push(LogEntry {
                            slot: SlotId::Cell {
                                bucket: bucket.addr,
                                cell,
                            },
                            record_addr: rec_addr,
                            record,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Returns the live records of one transaction, oldest first, by scanning
    /// the whole log. This is the linear scan whose cost grows with the
    /// number of interleaved "skip records" of other transactions — the
    /// effect Figures 3 (right) and 4 quantify for one-layer logging. The
    /// runtime commit/rollback/clear paths avoid it via the transaction
    /// manager's per-transaction slot registries; it remains for recovery
    /// and for orphaned transactions with no volatile state.
    pub fn scan_transaction(&self, txid: u64) -> Result<Vec<LogEntry>> {
        Ok(self
            .scan(false)?
            .into_iter()
            .filter(|e| e.record.txid == txid)
            .collect())
    }

    // ------------------------------------------------------------------
    // Clearing
    // ------------------------------------------------------------------

    /// Clears a single record from the log. For the Simple structure the node
    /// is atomically unlinked; for the bucketed structures the cell is marked
    /// as a gap, and a bucket whose every used cell became a gap is unlinked
    /// and freed.
    pub fn clear_slot(&self, slot: SlotId) -> Result<()> {
        let mut inner = self.inner.lock();
        match slot {
            SlotId::Node(node) => {
                let rec = inner.adll.element(node);
                inner.adll.remove(node)?;
                // The node and record memory can be reused once the removal
                // has persisted (remove() fences before returning).
                self.pool.free(node, crate::adll::ADLL_NODE_SIZE)?;
                if !rec.is_null() {
                    self.pool.free(rec, RECORD_SIZE)?;
                }
            }
            SlotId::Cell { bucket, cell } => {
                let bucket = Bucket::attach(bucket);
                let rec = bucket.cell(&self.pool, cell);
                if rec == GAP {
                    return Ok(());
                }
                bucket.clear_cell(&self.pool, cell);
                if rec != 0 {
                    self.pool.free(PAddr::new(rec), RECORD_SIZE)?;
                }
                let is_current = inner
                    .buckets
                    .current
                    .map(|b| b.addr == bucket.addr)
                    .unwrap_or(false);
                let mut empty_node = None;
                if let Some(occ) = inner.buckets.occupancy.get_mut(&bucket.addr.offset()) {
                    occ.live = occ.live.saturating_sub(1);
                    if occ.live == 0 && !is_current {
                        empty_node = Some(occ.node);
                    }
                }
                if let Some(node) = empty_node {
                    // Unlink the now-empty bucket from the ADLL through the
                    // stored node back-pointer — O(1), no list walk.
                    let capacity = bucket.capacity(&self.pool);
                    inner.adll.remove(node)?;
                    self.pool.free(node, crate::adll::ADLL_NODE_SIZE)?;
                    self.pool.free(bucket.addr, Bucket::byte_size(capacity))?;
                    inner.buckets.occupancy.remove(&bucket.addr.offset());
                }
            }
        }
        inner.live_records = inner.live_records.saturating_sub(1);
        Ok(())
    }

    /// Drops the entire log content the way Section 4.5 describes for
    /// post-recovery clearing under the force policy: remember the old list,
    /// create a fresh one, then de-allocate the old one wholesale (much
    /// cheaper than removing records one by one). Returns the new ADLL header
    /// address, which the caller must persist in the REWIND root.
    pub fn clear_all(&self) -> Result<PAddr> {
        let mut inner = self.inner.lock();
        // Step (a): keep a handle to the old structure.
        let old_adll = inner.adll.clone();
        let old_nodes: Vec<(PAddr, PAddr)> =
            old_adll.iter().map(|n| (n, old_adll.element(n))).collect();
        // Step (b): create a new, empty log and adopt it.
        let new_adll = Adll::create(Arc::clone(&self.pool))?;
        let new_header = new_adll.header();
        inner.adll = new_adll;
        inner.buckets = BucketState::default();
        inner.live_records = 0;
        self.header.store(new_header.offset(), Ordering::Release);
        // Step (c): de-allocate the old structure.
        for (node, element) in old_nodes {
            match self.structure {
                LogStructure::Simple => {
                    if !element.is_null() {
                        self.pool.free(element, RECORD_SIZE)?;
                    }
                }
                LogStructure::Optimized | LogStructure::Batch => {
                    let bucket = Bucket::attach(element);
                    let capacity = bucket.capacity(&self.pool);
                    for cell in 0..capacity {
                        let v = bucket.cell(&self.pool, cell);
                        if v != 0 && v != GAP {
                            self.pool.free(PAddr::new(v), RECORD_SIZE)?;
                        }
                    }
                    self.pool.free(element, Bucket::byte_size(capacity))?;
                }
            }
            self.pool.free(node, crate::adll::ADLL_NODE_SIZE)?;
        }
        self.pool
            .free(old_adll.header(), crate::adll::ADLL_HEADER_SIZE)?;
        Ok(new_header)
    }

    /// Compacts the bucketed log if its live-record occupancy has dropped
    /// below `threshold` (a fraction in `[0, 1]`): creates a new log, copies
    /// the live records over, and atomically adopts the new structure — the
    /// alternative clearing strategy sketched at the end of Section 3.3.
    /// Returns `Some(new_header)` if compaction ran.
    ///
    /// Compaction re-slots every surviving record, so any [`SlotId`]s the
    /// caller holds (e.g. the transaction manager's per-transaction slot
    /// registries) are invalidated; only run it when no such references
    /// exist.
    pub fn compact_if_sparse(&self, threshold: f64) -> Result<Option<PAddr>> {
        if self.structure == LogStructure::Simple {
            return Ok(None);
        }
        let entries = {
            let inner = self.inner.lock();
            let total_cells: usize = inner
                .adll
                .iter()
                .map(|n| {
                    let b = Bucket::attach(inner.adll.element(n));
                    b.reconstruct(&self.pool, false).0
                })
                .sum();
            if total_cells == 0 {
                return Ok(None);
            }
            let occupancy = inner.live_records as f64 / total_cells as f64;
            if occupancy >= threshold {
                return Ok(None);
            }
            self.scan_locked(&inner, false)?
        };
        // Rebuild: clear everything, then re-append the surviving records.
        self.clear_all()?;
        for e in &entries {
            self.append(&e.record)?;
        }
        Ok(Some(self.header()))
    }

    // ------------------------------------------------------------------
    // Recovery
    // ------------------------------------------------------------------

    /// Recovers the log's own structures after a failure: completes any
    /// interrupted ADLL operation and rebuilds the volatile bucket state from
    /// the persistent image.
    pub fn recover_structures(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.adll.recover()?;
        if matches!(
            self.structure,
            LogStructure::Optimized | LogStructure::Batch
        ) {
            let trust = self.structure == LogStructure::Batch;
            let mut occupancy = HashMap::new();
            let mut live_total = 0u64;
            let mut last_bucket: Option<(Bucket, usize)> = None;
            for node in inner.adll.iter() {
                let bucket = Bucket::attach(inner.adll.element(node));
                let (next_free, live) = bucket.reconstruct(&self.pool, trust);
                occupancy.insert(bucket.addr.offset(), BucketRef { live, node });
                live_total += live as u64;
                last_bucket = Some((bucket, next_free));
            }
            inner.buckets = BucketState {
                current: last_bucket.map(|(b, _)| b),
                next_cell: last_bucket.map(|(_, n)| n).unwrap_or(0),
                group_start: last_bucket.map(|(_, n)| n).unwrap_or(0),
                occupancy,
            };
            inner.live_records = live_total;
        } else {
            inner.live_records = inner
                .adll
                .iter()
                .filter(|n| !inner.adll.element(*n).is_null())
                .count() as u64;
        }
        // Lifetime stats are volatile; the best post-crash reconstruction of
        // `appended` is the number of records found in the log (fresh attach
        // starts from 0, so without this the counter silently resets).
        inner.appended = inner.appended.max(inner.live_records);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rewind_nvm::PoolConfig;

    fn pool() -> Arc<NvmPool> {
        NvmPool::new(PoolConfig::small())
    }

    fn cfg(structure: LogStructure) -> RewindConfig {
        let base = RewindConfig::batch().bucket_size(8).group_size(4);
        RewindConfig { structure, ..base }
    }

    fn rec(lsn: u64, txid: u64) -> LogRecord {
        LogRecord::update(lsn, txid, PAddr::new(0x100), lsn, lsn + 1)
    }

    fn all_structures() -> [LogStructure; 3] {
        [
            LogStructure::Simple,
            LogStructure::Optimized,
            LogStructure::Batch,
        ]
    }

    #[test]
    fn append_and_scan_preserve_order() {
        for s in all_structures() {
            let p = pool();
            let log = RecoverableLog::create(Arc::clone(&p), &cfg(s)).unwrap();
            for i in 0..20 {
                log.append(&rec(i, i % 3)).unwrap();
            }
            assert_eq!(log.len(), 20);
            let lsns: Vec<u64> = log
                .scan(false)
                .unwrap()
                .iter()
                .map(|e| e.record.lsn)
                .collect();
            assert_eq!(lsns, (0..20).collect::<Vec<_>>(), "structure {s:?}");
            let tx1: Vec<u64> = log
                .scan_transaction(1)
                .unwrap()
                .iter()
                .map(|e| e.record.lsn)
                .collect();
            assert_eq!(tx1, vec![1, 4, 7, 10, 13, 16, 19]);
        }
    }

    #[test]
    fn records_survive_power_cycle_and_reattach() {
        for s in all_structures() {
            let p = pool();
            let c = cfg(s);
            let log = RecoverableLog::create(Arc::clone(&p), &c).unwrap();
            for i in 0..10 {
                log.append(&rec(i, 1)).unwrap();
            }
            let header = log.header();
            drop(log);
            p.power_cycle();
            let log = RecoverableLog::attach(Arc::clone(&p), &c, header).unwrap();
            let lsns: Vec<u64> = log
                .scan(true)
                .unwrap()
                .iter()
                .map(|e| e.record.lsn)
                .collect();
            // Simple/Optimized persist every record immediately. Batch may
            // lose an unfenced suffix but never loses a fenced prefix and
            // never yields garbage.
            match s {
                LogStructure::Simple | LogStructure::Optimized => {
                    assert_eq!(lsns, (0..10).collect::<Vec<_>>(), "structure {s:?}")
                }
                LogStructure::Batch => {
                    assert!(lsns.len() >= 8, "at least the fenced groups survive");
                    assert_eq!(lsns, (0..lsns.len() as u64).collect::<Vec<_>>());
                }
            }
            // Appending after re-attach continues to work.
            log.append(&rec(100, 2)).unwrap();
            assert_eq!(log.scan(false).unwrap().last().unwrap().record.lsn, 100);
        }
    }

    #[test]
    fn batch_end_record_forces_group_persist() {
        let p = pool();
        let c = cfg(LogStructure::Batch);
        let log = RecoverableLog::create(Arc::clone(&p), &c).unwrap();
        log.append(&rec(0, 1)).unwrap();
        log.append(&LogRecord::end(1, 1)).unwrap();
        let header = log.header();
        drop(log);
        p.power_cycle();
        let log = RecoverableLog::attach(Arc::clone(&p), &c, header).unwrap();
        let recs = log.scan(true).unwrap();
        assert_eq!(recs.len(), 2, "END record must not linger unpersisted");
        assert_eq!(recs[1].record.rtype, RecordType::End);
    }

    #[test]
    fn clear_slot_removes_individual_records() {
        for s in all_structures() {
            let p = pool();
            let log = RecoverableLog::create(Arc::clone(&p), &cfg(s)).unwrap();
            let mut slots = Vec::new();
            for i in 0..6 {
                let (_, slot) = log.append(&rec(i, 1)).unwrap();
                slots.push(slot);
            }
            log.clear_slot(slots[2]).unwrap();
            log.clear_slot(slots[4]).unwrap();
            let lsns: Vec<u64> = log
                .scan(false)
                .unwrap()
                .iter()
                .map(|e| e.record.lsn)
                .collect();
            assert_eq!(lsns, vec![0, 1, 3, 5], "structure {s:?}");
            assert_eq!(log.len(), 4);
        }
    }

    #[test]
    fn clearing_a_full_bucket_unlinks_it() {
        let p = pool();
        let c = cfg(LogStructure::Optimized); // bucket size 8
        let log = RecoverableLog::create(Arc::clone(&p), &c).unwrap();
        let mut slots = Vec::new();
        for i in 0..16 {
            let (_, slot) = log.append(&rec(i, 1)).unwrap();
            slots.push(slot);
        }
        // Clear the whole first bucket (cells 0..8).
        for slot in &slots[..8] {
            log.clear_slot(*slot).unwrap();
        }
        let lsns: Vec<u64> = log
            .scan(false)
            .unwrap()
            .iter()
            .map(|e| e.record.lsn)
            .collect();
        assert_eq!(lsns, (8..16).collect::<Vec<_>>());
        // The freed bucket's memory is reusable: appending more records works.
        for i in 16..24 {
            log.append(&rec(i, 1)).unwrap();
        }
        assert_eq!(log.len(), 16);
    }

    #[test]
    fn clear_all_resets_the_log() {
        for s in all_structures() {
            let p = pool();
            let log = RecoverableLog::create(Arc::clone(&p), &cfg(s)).unwrap();
            for i in 0..10 {
                log.append(&rec(i, 1)).unwrap();
            }
            let old_header = log.header();
            let new_header = log.clear_all().unwrap();
            assert_ne!(old_header, new_header);
            assert_eq!(log.header(), new_header);
            assert!(log.is_empty());
            assert!(log.scan(false).unwrap().is_empty());
            // The log keeps working afterwards.
            log.append(&rec(99, 2)).unwrap();
            assert_eq!(log.len(), 1);
        }
    }

    #[test]
    fn compaction_rewrites_sparse_bucketed_logs() {
        let p = pool();
        let log = RecoverableLog::create(Arc::clone(&p), &cfg(LogStructure::Optimized)).unwrap();
        let mut slots = Vec::new();
        for i in 0..32 {
            let (_, slot) = log.append(&rec(i, 1)).unwrap();
            slots.push(slot);
        }
        for slot in &slots[..29] {
            log.clear_slot(*slot).unwrap();
        }
        let compacted = log.compact_if_sparse(0.5).unwrap();
        assert!(compacted.is_some());
        let lsns: Vec<u64> = log
            .scan(false)
            .unwrap()
            .iter()
            .map(|e| e.record.lsn)
            .collect();
        assert_eq!(lsns, vec![29, 30, 31]);
        // A dense log is not compacted.
        assert!(log.compact_if_sparse(0.5).unwrap().is_none());
    }

    #[test]
    fn batch_append_uses_fewer_fences_than_optimized() {
        let p_opt = pool();
        let p_batch = pool();
        let log_opt =
            RecoverableLog::create(Arc::clone(&p_opt), &cfg(LogStructure::Optimized)).unwrap();
        let log_batch =
            RecoverableLog::create(Arc::clone(&p_batch), &cfg(LogStructure::Batch)).unwrap();
        let before_opt = p_opt.stats();
        let before_batch = p_batch.stats();
        for i in 0..64 {
            log_opt.append(&rec(i, 1)).unwrap();
            log_batch.append(&rec(i, 1)).unwrap();
        }
        let fences_opt = p_opt.stats().since(&before_opt).fences;
        let fences_batch = p_batch.stats().since(&before_batch).fences;
        assert!(
            fences_batch * 2 < fences_opt,
            "batch ({fences_batch}) should use far fewer fences than optimized ({fences_opt})"
        );
        let simple_pool = pool();
        let log_simple =
            RecoverableLog::create(Arc::clone(&simple_pool), &cfg(LogStructure::Simple)).unwrap();
        let before_simple = simple_pool.stats();
        for i in 0..64 {
            log_simple.append(&rec(i, 1)).unwrap();
        }
        let writes_simple = simple_pool.stats().since(&before_simple).nvm_writes;
        let writes_opt = p_opt.stats().since(&before_opt).nvm_writes;
        assert!(
            writes_opt < writes_simple,
            "optimized ({writes_opt}) should issue fewer NVM writes than simple ({writes_simple})"
        );
    }

    #[test]
    fn crash_mid_append_never_corrupts_the_log() {
        for s in all_structures() {
            for crash_at in 1..=20u64 {
                let p = pool();
                let c = cfg(s);
                let log = RecoverableLog::create(Arc::clone(&p), &c).unwrap();
                for i in 0..4 {
                    log.append(&rec(i, 1)).unwrap();
                }
                // Ensure the pre-crash records are fully persistent so we can
                // assert on them below (Batch defers persistence otherwise).
                log.flush_pending().unwrap();
                let header = log.header();
                p.crash_injector().arm_after(crash_at);
                let _ = log.append(&rec(4, 1));
                drop(log);
                p.power_cycle();
                let log = RecoverableLog::attach(Arc::clone(&p), &c, header).unwrap();
                let lsns: Vec<u64> = log
                    .scan(true)
                    .unwrap()
                    .iter()
                    .map(|e| e.record.lsn)
                    .collect();
                assert!(
                    lsns == vec![0, 1, 2, 3] || lsns == vec![0, 1, 2, 3, 4],
                    "structure {s:?} crash {crash_at}: unexpected log contents {lsns:?}"
                );
            }
        }
    }
}
