//! Error type for the REWIND runtime.

use rewind_nvm::NvmError;
use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RewindError>;

/// Errors raised by the REWIND log and transaction runtime.
///
/// Marked `#[non_exhaustive]`: variants exist that are protocol-internal
/// (e.g. [`RewindError::LockOrderRestart`]), and new ones may appear —
/// always match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RewindError {
    /// An error bubbled up from the NVM substrate (allocation failure, bad
    /// address, ...).
    Nvm(NvmError),
    /// The transaction identifier is unknown or the transaction already
    /// finished.
    UnknownTransaction(u64),
    /// The transaction is not in a state that allows the requested operation
    /// (e.g. logging an update on a transaction that already committed).
    InvalidTransactionState {
        /// The transaction in question.
        txid: u64,
        /// Human-readable description of the violated expectation.
        reason: &'static str,
    },
    /// The persistent root area does not contain a REWIND root (the pool was
    /// never initialised by a transaction manager).
    NotInitialised,
    /// The persistent root was written by an incompatible configuration
    /// (e.g. a two-layer log opened as one-layer).
    ConfigMismatch(String),
    /// The log contains a record that cannot be decoded.
    CorruptLog(String),
    /// The user explicitly aborted a `run` closure.
    Aborted(String),
    /// The store (or one of its shards) is powered off; it must be recovered
    /// before it accepts new work.
    Offline(&'static str),
    /// Persistent state failed validation: a bad pool-file magic/version, a
    /// header checksum mismatch, or an impossible on-disk geometry. Raised
    /// by the file-backed pool open paths instead of panicking.
    Corrupt {
        /// What failed validation and where.
        detail: String,
    },
    /// An I/O error from a file-backed pool, carried as
    /// [`std::io::ErrorKind`] plus a rendered message so the error stays
    /// cloneable and comparable through the facade.
    Io {
        /// Kind of the underlying I/O error.
        kind: std::io::ErrorKind,
        /// Rendered message with context.
        detail: String,
    },
    /// An asynchronously submitted operation was cancelled before any
    /// commit group claimed it (or its store shut down with the operation
    /// still queued); nothing was applied. This is the ack a completion
    /// handle delivers when the submission never reached a commit.
    Canceled,
    /// An asynchronously submitted transaction closure panicked. The worker
    /// caught the unwind, rolled the transaction back (nothing committed),
    /// and settled the completion handle with this error instead of dying —
    /// the panic payload's message is carried when it was a string.
    Panicked(String),
    /// Internal control-flow marker of the lock-ordered cross-shard
    /// coordinator: the transaction touched the contained shard (contended,
    /// below the lock frontier) after a higher-numbered shard was already
    /// locked, so the attempt must be rolled back and re-run with the grown
    /// lock set. The coordinator also tracks the restart on the transaction
    /// handle itself, so a closure that swallows this error cannot commit a
    /// partial transaction — but propagating it unchanged lets the doomed
    /// attempt stop early instead of running to its end.
    LockOrderRestart(usize),
}

impl fmt::Display for RewindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewindError::Nvm(e) => write!(f, "NVM error: {e}"),
            RewindError::UnknownTransaction(id) => write!(f, "unknown transaction {id}"),
            RewindError::InvalidTransactionState { txid, reason } => {
                write!(f, "invalid state for transaction {txid}: {reason}")
            }
            RewindError::NotInitialised => write!(f, "pool holds no REWIND root"),
            RewindError::ConfigMismatch(msg) => write!(f, "configuration mismatch: {msg}"),
            RewindError::CorruptLog(msg) => write!(f, "corrupt log: {msg}"),
            RewindError::Aborted(msg) => write!(f, "transaction aborted: {msg}"),
            RewindError::Offline(what) => write!(f, "{what} is offline; recover it first"),
            RewindError::Corrupt { detail } => write!(f, "corrupt persistent state: {detail}"),
            RewindError::Io { kind, detail } => write!(f, "I/O error ({kind:?}): {detail}"),
            RewindError::Canceled => {
                write!(f, "operation cancelled before it joined a commit group")
            }
            RewindError::Panicked(msg) => {
                write!(f, "transaction closure panicked (rolled back): {msg}")
            }
            RewindError::LockOrderRestart(shard) => write!(
                f,
                "cross-shard lock-order restart (shard {shard}); \
                 propagate this error out of the transact closure"
            ),
        }
    }
}

impl std::error::Error for RewindError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RewindError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvmError> for RewindError {
    fn from(e: NvmError) -> Self {
        // Corruption and I/O failures keep their typed identity across the
        // crate boundary; everything else stays a wrapped NVM error.
        match e {
            NvmError::Corrupt { detail } => RewindError::Corrupt { detail },
            NvmError::Io { kind, detail } => RewindError::Io { kind, detail },
            other => RewindError::Nvm(other),
        }
    }
}

impl From<std::io::Error> for RewindError {
    fn from(e: std::io::Error) -> Self {
        RewindError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: RewindError = NvmError::InvalidFree(8).into();
        assert!(matches!(e, RewindError::Nvm(_)));
        assert!(e.to_string().contains("NVM error"));
        assert!(RewindError::UnknownTransaction(3).to_string().contains('3'));
        assert!(RewindError::NotInitialised.to_string().contains("root"));
        let e = RewindError::InvalidTransactionState {
            txid: 9,
            reason: "already committed",
        };
        assert!(e.to_string().contains("already committed"));
    }

    #[test]
    fn corruption_and_io_keep_typed_identity() {
        let e: RewindError = NvmError::Corrupt {
            detail: "bad file magic".into(),
        }
        .into();
        assert!(matches!(e, RewindError::Corrupt { .. }));
        assert!(e.to_string().contains("bad file magic"));

        let e: RewindError = NvmError::Io {
            kind: std::io::ErrorKind::PermissionDenied,
            detail: "fsync: nope".into(),
        }
        .into();
        assert!(matches!(
            e,
            RewindError::Io {
                kind: std::io::ErrorKind::PermissionDenied,
                ..
            }
        ));

        let e: RewindError = std::io::Error::other("disk gone").into();
        assert!(matches!(e, RewindError::Io { .. }));
        assert_eq!(e.clone(), e);
    }

    #[test]
    fn panicked_carries_the_payload_message() {
        let e = RewindError::Panicked("index out of bounds".into());
        assert!(e.to_string().contains("panicked"));
        assert!(e.to_string().contains("index out of bounds"));
        assert!(e.to_string().contains("rolled back"));
    }

    #[test]
    fn source_chains_to_nvm_error() {
        use std::error::Error;
        let e: RewindError = NvmError::InvalidFree(8).into();
        assert!(e.source().is_some());
        assert!(RewindError::NotInitialised.source().is_none());
    }
}
