//! # rewind-core — the REWIND recoverable log and transaction runtime
//!
//! This crate implements the primary contribution of the paper *REWIND:
//! Recovery Write-Ahead System for In-Memory Non-Volatile Data-Structures*
//! (Chatzistergiou, Cintra & Viglas, PVLDB 8(5), 2015): a user-mode library
//! that gives arbitrary imperative code transactional atomicity and
//! durability for data structures living directly in non-volatile memory.
//!
//! The building blocks, bottom-up:
//!
//! * [`Adll`] — the Atomic Doubly-Linked List, a self-recovering list in NVM
//!   (Section 3.2 of the paper);
//! * [`bucket::Bucket`] / [`RecoverableLog`] — the three log structure
//!   variants (Simple, Optimized, Batch) behind a uniform interface
//!   (Sections 3.2–3.3);
//! * [`Aavlt`] — the Atomic AVL Tree that indexes log records by transaction
//!   for the two-layer configuration (Section 3.4);
//! * [`TransactionManager`] — WAL, commit, rollback, ARIES-style recovery
//!   (analysis / redo / undo), checkpointing and log clearing under the four
//!   configurations {one,two}-layer × {force,no-force} (Sections 2 and 4).
//!
//! The intended user-facing surface is small, mirroring the paper's
//! `persistent atomic { ... }` blocks:
//!
//! ```
//! use rewind_core::{RewindConfig, TransactionManager};
//! use rewind_nvm::{NvmPool, PoolConfig};
//!
//! let pool = NvmPool::new(PoolConfig::small());
//! let tm = TransactionManager::create(pool.clone(), RewindConfig::batch()).unwrap();
//! let slot = pool.alloc(8).unwrap();
//!
//! // persistent_atomic { *slot = 42; }
//! tm.run(|tx| {
//!     tx.write_u64(slot, 42)?;
//!     Ok(())
//! })
//! .unwrap();
//! assert_eq!(pool.read_u64(slot), 42);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aavlt;
pub mod adll;
pub mod bucket;
pub mod checkpoint;
pub mod config;
pub mod error;
pub mod log;
pub mod record;
pub mod recovery;
pub mod txn;

pub use aavlt::Aavlt;
pub use adll::Adll;
pub use config::{LogLayers, LogStructure, Policy, RewindConfig};
pub use error::{Result, RewindError};
pub use log::{LogEntry, RecoverableLog, SlotId};
pub use record::{LogRecord, RecordType, RECORD_SIZE};
pub use recovery::RecoveryReport;
pub use txn::{TmStats, TmStatsSnapshot, Transaction, TransactionManager, TxId, TxStatus};
