//! The transaction recovery manager.
//!
//! This is the programmer-facing runtime of REWIND (Section 4 of the paper):
//! it assigns transaction identifiers, enforces write-ahead logging for every
//! critical update, and implements commit, rollback, checkpointing and
//! recovery under the four configurations {one,two}-layer × {force,no-force}.
//!
//! The programmer-visible API mirrors the paper's expanded code (Listing 2):
//! [`TransactionManager::begin`] plays the role of `tm->getNextID()`,
//! [`TransactionManager::log_update`] is `tm->log(...)`, and
//! [`TransactionManager::commit`] is `tm->commit(...)`. The
//! [`TransactionManager::run`] helper wraps all three into the
//! `persistent atomic { ... }` block of Listing 1, and
//! [`Transaction::write_u64`] combines the log call with the store itself the
//! way a compiler pass would.

use crate::aavlt::Aavlt;
use crate::config::{LogLayers, Policy, RewindConfig};
use crate::log::{RecoverableLog, SlotId};
use crate::record::{LogRecord, RecordType, RECORD_SIZE};
use crate::{Result, RewindError};
use parking_lot::Mutex;
use rewind_nvm::{NvmPool, PAddr};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transaction identifier.
pub type TxId = u64;

/// Persistent root layout (inside the pool's user root region):
/// `magic, fingerprint, log header, index root cell, index meta-log header`.
const ROOT_MAGIC: u64 = 0x5245_5749_4e44_524f; // "REWINDRO"
const ROOT_WORDS: u64 = 5;
const RW_MAGIC: u64 = 0;
const RW_FINGERPRINT: u64 = 1;
const RW_LOG_HEADER: u64 = 2;
const RW_INDEX_ROOT: u64 = 3;
const RW_INDEX_META: u64 = 4;

/// Lifecycle state of a transaction, as seen by the (volatile) transaction
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Started and not yet committed or rolled back.
    Running,
    /// A rollback started (a ROLLBACK record exists) but has not completed.
    Aborted,
    /// Committed or fully rolled back (an END record exists).
    Finished,
}

/// Volatile transaction-table entry. The table is authoritative only in the
/// two-layer configuration (the paper maintains it during logging there); in
/// the one-layer configuration it exists purely for API error-checking and
/// statistics and carries no protocol state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TxEntry {
    pub(crate) status: TxStatus,
    /// Most recent log record of the transaction (two-layer back-chain).
    pub(crate) last_record: PAddr,
}

/// Aggregate counters exposed for tests and the benchmark harness.
#[derive(Debug, Default)]
pub struct TmStats {
    pub(crate) begun: AtomicU64,
    pub(crate) committed: AtomicU64,
    pub(crate) rolled_back: AtomicU64,
    pub(crate) records_logged: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    pub(crate) recoveries: AtomicU64,
}

/// A point-in-time copy of [`TmStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TmStatsSnapshot {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions rolled back (explicitly or by recovery).
    pub rolled_back: u64,
    /// Log records appended.
    pub records_logged: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Recoveries performed.
    pub recoveries: u64,
}

impl TmStatsSnapshot {
    /// Component-wise sum, for aggregating the managers of independent
    /// partitions (e.g. the shards of a sharded store) into one view.
    pub fn merge(&self, other: &TmStatsSnapshot) -> TmStatsSnapshot {
        TmStatsSnapshot {
            begun: self.begun + other.begun,
            committed: self.committed + other.committed,
            rolled_back: self.rolled_back + other.rolled_back,
            records_logged: self.records_logged + other.records_logged,
            checkpoints: self.checkpoints + other.checkpoints,
            recoveries: self.recoveries + other.recoveries,
        }
    }
}

/// Storage backend for log records: the one-layer configurations keep them in
/// the recoverable log directly; the two-layer configurations keep them in the
/// atomic AVL tree (whose own updates are logged in its private list).
#[derive(Debug)]
pub(crate) enum Backend {
    /// One-layer: records live in the recoverable log.
    One(RecoverableLog),
    /// Two-layer: records live in per-transaction chains indexed by the AAVLT.
    Two(Aavlt),
}

/// The REWIND transaction recovery manager.
#[derive(Debug)]
pub struct TransactionManager {
    pub(crate) pool: Arc<NvmPool>,
    pub(crate) cfg: RewindConfig,
    pub(crate) backend: Backend,
    pub(crate) next_txid: AtomicU64,
    pub(crate) next_lsn: AtomicU64,
    pub(crate) table: Mutex<HashMap<TxId, TxEntry>>,
    pub(crate) stats: TmStats,
    /// Records appended since the last checkpoint (drives automatic
    /// checkpointing under the no-force policy).
    pub(crate) records_since_checkpoint: AtomicU64,
    /// Report of the most recent recovery pass run by this manager, if any
    /// (surfaced so a multi-pool front-end can aggregate recovery work).
    pub(crate) last_recovery: Mutex<Option<crate::recovery::RecoveryReport>>,
    /// Serializes checkpoints and whole-log clearing against each other.
    pub(crate) checkpoint_lock: Mutex<()>,
}

impl TransactionManager {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Creates a fresh REWIND instance in `pool`, overwriting any existing
    /// root. Use [`TransactionManager::open`] to attach to existing data.
    pub fn create(pool: Arc<NvmPool>, cfg: RewindConfig) -> Result<Self> {
        let backend = match cfg.layers {
            LogLayers::OneLayer => Backend::One(RecoverableLog::create(Arc::clone(&pool), &cfg)?),
            LogLayers::TwoLayer => Backend::Two(Aavlt::create(Arc::clone(&pool), &cfg)?),
        };
        let tm = TransactionManager {
            pool,
            cfg,
            backend,
            next_txid: AtomicU64::new(1),
            next_lsn: AtomicU64::new(1),
            table: Mutex::new(HashMap::new()),
            stats: TmStats::default(),
            records_since_checkpoint: AtomicU64::new(0),
            checkpoint_lock: Mutex::new(()),
            last_recovery: Mutex::new(None),
        };
        tm.persist_root();
        tm.pool.mark_in_use();
        Ok(tm)
    }

    /// Attaches to the REWIND instance stored in `pool`, creating a fresh one
    /// if the pool holds none. If the pool was not shut down cleanly the full
    /// recovery procedure runs before the manager is returned.
    pub fn open(pool: Arc<NvmPool>, cfg: RewindConfig) -> Result<Self> {
        let root = pool.user_root();
        if pool.read_u64(root.word(RW_MAGIC)) != ROOT_MAGIC {
            return Self::create(pool, cfg);
        }
        let stored = pool.read_u64(root.word(RW_FINGERPRINT));
        if stored != cfg.fingerprint() {
            return Err(RewindError::ConfigMismatch(format!(
                "pool was initialised with fingerprint {stored:#x}, asked to open with {:#x}",
                cfg.fingerprint()
            )));
        }
        let backend = match cfg.layers {
            LogLayers::OneLayer => {
                let header = PAddr::new(pool.read_u64(root.word(RW_LOG_HEADER)));
                Backend::One(RecoverableLog::attach(Arc::clone(&pool), &cfg, header)?)
            }
            LogLayers::TwoLayer => {
                let index_root = crate::aavlt::AavltRoot {
                    root_cell: PAddr::new(pool.read_u64(root.word(RW_INDEX_ROOT))),
                    meta_log_header: PAddr::new(pool.read_u64(root.word(RW_INDEX_META))),
                };
                Backend::Two(Aavlt::attach(Arc::clone(&pool), &cfg, index_root)?)
            }
        };
        let tm = TransactionManager {
            pool: Arc::clone(&pool),
            cfg,
            backend,
            next_txid: AtomicU64::new(1),
            next_lsn: AtomicU64::new(1),
            table: Mutex::new(HashMap::new()),
            stats: TmStats::default(),
            records_since_checkpoint: AtomicU64::new(0),
            checkpoint_lock: Mutex::new(()),
            last_recovery: Mutex::new(None),
        };
        if !pool.was_clean_shutdown() {
            tm.recover()?;
        } else {
            tm.bump_counters_past_log()?;
        }
        tm.pool.mark_in_use();
        Ok(tm)
    }

    /// Flushes everything and marks the pool as cleanly shut down, so the
    /// next [`TransactionManager::open`] skips recovery.
    pub fn shutdown(&self) -> Result<()> {
        if self.cfg.policy == Policy::NoForce {
            self.checkpoint()?;
        }
        self.pool.mark_clean_shutdown();
        Ok(())
    }

    /// Writes the durable root pointers for the current backend.
    pub(crate) fn persist_root(&self) {
        let root = self.pool.user_root();
        self.pool
            .write_u64_nt(root.word(RW_FINGERPRINT), self.cfg.fingerprint());
        match &self.backend {
            Backend::One(log) => {
                self.pool
                    .write_u64_nt(root.word(RW_LOG_HEADER), log.header().offset());
                self.pool.write_u64_nt(root.word(RW_INDEX_ROOT), 0);
                self.pool.write_u64_nt(root.word(RW_INDEX_META), 0);
            }
            Backend::Two(index) => {
                let r = index.durable_root();
                self.pool.write_u64_nt(root.word(RW_LOG_HEADER), 0);
                self.pool
                    .write_u64_nt(root.word(RW_INDEX_ROOT), r.root_cell.offset());
                self.pool
                    .write_u64_nt(root.word(RW_INDEX_META), r.meta_log_header.offset());
            }
        }
        self.pool.sfence();
        // The magic goes in last so a partially written root is never taken
        // for a valid one.
        self.pool.write_u64_nt(root.word(RW_MAGIC), ROOT_MAGIC);
        self.pool.sfence();
        debug_assert!(ROOT_WORDS as usize * 8 <= self.pool.user_root_size());
    }

    /// After a clean attach there is no recovery pass to discover the highest
    /// LSN/transaction id in the log, so scan for them explicitly.
    fn bump_counters_past_log(&self) -> Result<()> {
        let mut max_lsn = 0;
        let mut max_txid = 0;
        for (_, rec) in self.all_records(false)? {
            max_lsn = max_lsn.max(rec.lsn);
            if rec.txid != u64::MAX {
                max_txid = max_txid.max(rec.txid);
            }
        }
        self.next_lsn.store(max_lsn + 1, Ordering::SeqCst);
        self.next_txid.store(max_txid + 1, Ordering::SeqCst);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The pool this manager operates on.
    pub fn pool(&self) -> &Arc<NvmPool> {
        &self.pool
    }

    /// The configuration this manager was opened with.
    pub fn config(&self) -> &RewindConfig {
        &self.cfg
    }

    /// Number of live log records (both layers).
    pub fn log_len(&self) -> u64 {
        match &self.backend {
            Backend::One(log) => log.len(),
            Backend::Two(index) => index.txids().iter().map(|t| index.record_count(*t)).sum(),
        }
    }

    /// A snapshot of the manager's counters.
    pub fn stats(&self) -> TmStatsSnapshot {
        TmStatsSnapshot {
            begun: self.stats.begun.load(Ordering::Relaxed),
            committed: self.stats.committed.load(Ordering::Relaxed),
            rolled_back: self.stats.rolled_back.load(Ordering::Relaxed),
            records_logged: self.stats.records_logged.load(Ordering::Relaxed),
            checkpoints: self.stats.checkpoints.load(Ordering::Relaxed),
            recoveries: self.stats.recoveries.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn next_lsn(&self) -> u64 {
        self.next_lsn.fetch_add(1, Ordering::SeqCst)
    }

    /// Returns every live record as `(slot-or-chain-position, record)` pairs
    /// in log order (one-layer) or grouped by transaction (two-layer).
    /// Recovery and checkpointing build on this.
    pub(crate) fn all_records(
        &self,
        trust_watermark: bool,
    ) -> Result<Vec<(RecordLocation, LogRecord)>> {
        match &self.backend {
            Backend::One(log) => Ok(log
                .scan(trust_watermark)?
                .into_iter()
                .map(|e| (RecordLocation::Slot(e.slot), e.record))
                .collect()),
            Backend::Two(index) => {
                let mut out = Vec::new();
                for txid in index.txids() {
                    for (addr, rec) in index.records_of(txid)?.into_iter().rev() {
                        out.push((RecordLocation::Chained { txid, addr }, rec));
                    }
                }
                // Order by LSN so forward scans see a global log order.
                out.sort_by_key(|(_, r)| r.lsn);
                Ok(out)
            }
        }
    }

    // ------------------------------------------------------------------
    // The programmer-facing API (Listing 2 of the paper)
    // ------------------------------------------------------------------

    /// Starts a new transaction and returns its identifier
    /// (`tm->getNextID()` in the paper).
    pub fn begin(&self) -> TxId {
        let id = self.next_txid.fetch_add(1, Ordering::SeqCst);
        self.stats.begun.fetch_add(1, Ordering::Relaxed);
        self.table.lock().insert(
            id,
            TxEntry {
                status: TxStatus::Running,
                last_record: PAddr::NULL,
            },
        );
        id
    }

    /// Logs an update of the 8-byte word at `addr` from `old` to `new` on
    /// behalf of transaction `tx` (`tm->log(...)` in the paper). The record
    /// is durably in the log before this function returns (or, for the Batch
    /// structure, before any *forced* user write can overtake it).
    ///
    /// The caller performs the store itself afterwards, exactly like the
    /// expanded code in Listing 2; [`Transaction::write_u64`] does both.
    pub fn log_update(&self, tx: TxId, addr: PAddr, old: u64, new: u64) -> Result<()> {
        self.check_running(tx)?;
        let mut rec = LogRecord::update(self.next_lsn(), tx, addr, old, new);
        self.append_for(tx, &mut rec)?;
        self.maybe_auto_checkpoint()?;
        Ok(())
    }

    /// Logs a deferred de-allocation (the paper's DELETE record): the memory
    /// at `addr` is returned to the allocator only after the transaction's
    /// records are cleared (commit-time under force, checkpoint-time under
    /// no-force), because freeing earlier could not be undone.
    pub fn log_delete(&self, tx: TxId, addr: PAddr, size: u64) -> Result<()> {
        self.check_running(tx)?;
        let mut rec = LogRecord::delete(self.next_lsn(), tx, addr, size);
        self.append_for(tx, &mut rec)?;
        Ok(())
    }

    /// Logs and performs a user update in one call, honouring the force
    /// policy: forced updates go to NVM with a non-temporal store, unforced
    /// updates stay in the cache until a checkpoint.
    pub fn write_u64(&self, tx: TxId, addr: PAddr, new: u64) -> Result<()> {
        let old = self.pool.read_u64(addr);
        if old == new {
            return self.check_running(tx);
        }
        self.log_update(tx, addr, old, new)?;
        match self.cfg.policy {
            Policy::Force => {
                // WAL: the record group must be persistent before the data.
                if let Backend::One(log) = &self.backend {
                    log.flush_pending()?;
                }
                self.pool.write_u64_nt(addr, new);
            }
            Policy::NoForce => self.pool.write_u64(addr, new),
        }
        Ok(())
    }

    /// Commits transaction `tx` (`tm->commit(...)` in the paper).
    ///
    /// Under the force policy all of the transaction's updates are already in
    /// NVM; commit fences, writes the END record and clears the transaction's
    /// log records. Under no-force only the END record is written; records are
    /// cleared by a later checkpoint.
    pub fn commit(&self, tx: TxId) -> Result<()> {
        self.check_running(tx)?;
        if self.cfg.policy == Policy::Force {
            self.pool.sfence();
        }
        let mut end = LogRecord::end(self.next_lsn(), tx);
        self.append_for(tx, &mut end)?;
        self.set_status(tx, TxStatus::Finished);
        self.stats.committed.fetch_add(1, Ordering::Relaxed);
        if self.cfg.policy == Policy::Force {
            self.clear_transaction(tx, true)?;
        }
        Ok(())
    }

    /// Rolls transaction `tx` back: every logged update is undone (newest
    /// first), a compensation record is written for each undo, and an END
    /// record marks completion. Under the force policy the transaction's
    /// records are cleared afterwards, as after commit.
    pub fn rollback(&self, tx: TxId) -> Result<()> {
        self.check_running(tx)?;
        let mut rollback_marker = LogRecord::rollback(self.next_lsn(), tx);
        self.append_for(tx, &mut rollback_marker)?;
        self.set_status(tx, TxStatus::Aborted);

        // Collect the transaction's records. One-layer: a full backward scan
        // of the log (the cost Figure 4 left measures); two-layer: follow the
        // per-transaction chain through the AVL index.
        let mut updates: Vec<LogRecord> = match &self.backend {
            Backend::One(log) => log
                .scan_transaction(tx)?
                .into_iter()
                .map(|e| e.record)
                .collect(),
            Backend::Two(index) => index
                .records_of(tx)?
                .into_iter()
                .map(|(_, r)| r)
                .rev()
                .collect(),
        };
        updates.retain(|r| r.rtype == RecordType::Update);
        for rec in updates.iter().rev() {
            self.undo_one(tx, rec)?;
        }
        let mut end = LogRecord::end(self.next_lsn(), tx);
        self.append_for(tx, &mut end)?;
        self.set_status(tx, TxStatus::Finished);
        self.stats.rolled_back.fetch_add(1, Ordering::Relaxed);
        if self.cfg.policy == Policy::Force {
            self.clear_transaction(tx, true)?;
        }
        Ok(())
    }

    /// Runs `f` inside a transaction: commits on `Ok`, rolls back on `Err`.
    /// This is the library equivalent of the paper's
    /// `persistent atomic { ... }` block.
    pub fn run<T>(&self, f: impl FnOnce(&mut Transaction<'_>) -> Result<T>) -> Result<T> {
        let id = self.begin();
        let mut tx = Transaction { tm: self, id };
        match f(&mut tx) {
            Ok(v) => {
                self.commit(id)?;
                Ok(v)
            }
            Err(e) => {
                self.rollback(id)?;
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals shared with recovery / checkpointing
    // ------------------------------------------------------------------

    pub(crate) fn check_running(&self, tx: TxId) -> Result<()> {
        match self.table.lock().get(&tx) {
            None => Err(RewindError::UnknownTransaction(tx)),
            Some(e) if e.status == TxStatus::Running => Ok(()),
            Some(_) => Err(RewindError::InvalidTransactionState {
                txid: tx,
                reason: "transaction is no longer running",
            }),
        }
    }

    pub(crate) fn set_status(&self, tx: TxId, status: TxStatus) {
        if let Some(e) = self.table.lock().get_mut(&tx) {
            e.status = status;
        }
    }

    /// Appends a record on behalf of `tx` through whichever backend is
    /// configured, maintaining the two-layer back-chain and transaction
    /// table.
    pub(crate) fn append_for(&self, tx: TxId, rec: &mut LogRecord) -> Result<PAddr> {
        self.stats.records_logged.fetch_add(1, Ordering::Relaxed);
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        match &self.backend {
            Backend::One(log) => {
                let (addr, _slot) = log.append(rec)?;
                Ok(addr)
            }
            Backend::Two(index) => {
                // The record is written to NVM first, then indexed; the index
                // insert links it into the transaction's chain (setting its
                // `prev` field) and is itself crash-atomic.
                let addr = self.pool.alloc(RECORD_SIZE)?;
                rec.write_to_nt(&self.pool, addr);
                self.pool.sfence();
                index.insert_record(tx, addr)?;
                if let Some(e) = self.table.lock().get_mut(&tx) {
                    e.last_record = addr;
                }
                Ok(addr)
            }
        }
    }

    /// Undoes a single UPDATE record: writes a CLR and restores the old
    /// value, forcing it to NVM under the force policy (the undo must be
    /// persistent so the log can be cleared afterwards).
    pub(crate) fn undo_one(&self, tx: TxId, rec: &LogRecord) -> Result<()> {
        let mut clr = LogRecord::clr(self.next_lsn(), tx, rec.addr, rec.old, rec.prev);
        // For the one-layer log there is no per-transaction chain; the CLR's
        // undo_next instead records the LSN of the compensated record so a
        // restarted recovery can skip records that were already undone.
        if matches!(self.backend, Backend::One(_)) {
            clr.undo_next = PAddr::new(rec.lsn);
        }
        self.append_for(tx, &mut clr)?;
        match self.cfg.policy {
            Policy::Force => {
                if let Backend::One(log) = &self.backend {
                    log.flush_pending()?;
                }
                self.pool.write_u64_nt(rec.addr, rec.old);
            }
            Policy::NoForce => self.pool.write_u64(rec.addr, rec.old),
        }
        Ok(())
    }

    /// Clears every log record of `tx`, processing DELETE records (performing
    /// the deferred de-allocations) when `process_deletes` is true, and
    /// removing the END record last so an interrupted clearing restarts
    /// identically (Section 4.6).
    pub(crate) fn clear_transaction(&self, tx: TxId, process_deletes: bool) -> Result<()> {
        match &self.backend {
            Backend::One(log) => {
                let entries = log.scan_transaction(tx)?;
                let mut end_slots = Vec::new();
                for e in &entries {
                    if e.record.rtype == RecordType::End {
                        end_slots.push(e.slot);
                        continue;
                    }
                    if process_deletes && e.record.rtype == RecordType::Delete {
                        self.pool.free(e.record.addr, e.record.old as usize)?;
                    }
                    log.clear_slot(e.slot)?;
                }
                for slot in end_slots {
                    log.clear_slot(slot)?;
                }
            }
            Backend::Two(index) => {
                let records = index.records_of(tx)?;
                for (addr, rec) in &records {
                    if process_deletes && rec.rtype == RecordType::Delete {
                        self.pool.free(rec.addr, rec.old as usize)?;
                    }
                    // Record memory is owned by the manager in the two-layer
                    // configuration; release it once the index entry is gone.
                    let _ = addr;
                }
                index.remove_txn(tx)?;
                for (addr, _) in records {
                    self.pool.free(addr, RECORD_SIZE)?;
                }
            }
        }
        self.table.lock().remove(&tx);
        Ok(())
    }

    fn maybe_auto_checkpoint(&self) -> Result<()> {
        if self.cfg.policy != Policy::NoForce {
            return Ok(());
        }
        let Some(every) = self.cfg.checkpoint_every else {
            return Ok(());
        };
        if self.records_since_checkpoint.load(Ordering::Relaxed) >= every {
            self.checkpoint()?;
        }
        Ok(())
    }
}

/// Location of a record, independent of the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordLocation {
    /// One-layer: a slot in the recoverable log.
    Slot(SlotId),
    /// Two-layer: a record chained under `txid` at `addr`.
    Chained {
        /// Owning transaction.
        txid: TxId,
        /// Record address.
        addr: PAddr,
    },
}

/// Handle passed to [`TransactionManager::run`] closures: a thin wrapper that
/// remembers the transaction id.
#[derive(Debug)]
pub struct Transaction<'a> {
    tm: &'a TransactionManager,
    id: TxId,
}

impl Transaction<'_> {
    /// The transaction identifier.
    pub fn id(&self) -> TxId {
        self.id
    }

    /// Reads an 8-byte word (no logging needed for reads).
    pub fn read_u64(&self, addr: PAddr) -> u64 {
        self.tm.pool.read_u64(addr)
    }

    /// Logs and performs an update of the word at `addr`.
    pub fn write_u64(&mut self, addr: PAddr, new: u64) -> Result<()> {
        self.tm.write_u64(self.id, addr, new)
    }

    /// Logs an update the caller will perform itself (the raw `tm->log` call
    /// of Listing 2).
    pub fn log_update(&mut self, addr: PAddr, old: u64, new: u64) -> Result<()> {
        self.tm.log_update(self.id, addr, old, new)
    }

    /// Schedules `size` bytes at `addr` for de-allocation after the
    /// transaction's records are cleared.
    pub fn defer_free(&mut self, addr: PAddr, size: u64) -> Result<()> {
        self.tm.log_delete(self.id, addr, size)
    }

    /// Aborts the transaction from inside a [`TransactionManager::run`]
    /// closure by returning an error the closure can propagate.
    pub fn abort<T>(&self, reason: &str) -> Result<T> {
        Err(RewindError::Aborted(reason.to_string()))
    }
}
