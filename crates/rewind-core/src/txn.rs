//! The transaction recovery manager.
//!
//! This is the programmer-facing runtime of REWIND (Section 4 of the paper):
//! it assigns transaction identifiers, enforces write-ahead logging for every
//! critical update, and implements commit, rollback, checkpointing and
//! recovery under the four configurations {one,two}-layer × {force,no-force}.
//!
//! The programmer-visible API mirrors the paper's expanded code (Listing 2):
//! [`TransactionManager::begin`] plays the role of `tm->getNextID()`,
//! [`TransactionManager::log_update`] is `tm->log(...)`, and
//! [`TransactionManager::commit`] is `tm->commit(...)`. The
//! [`TransactionManager::run`] helper wraps all three into the
//! `persistent atomic { ... }` block of Listing 1, and
//! [`Transaction::write_u64`] combines the log call with the store itself the
//! way a compiler pass would.
//!
//! Unlike the paper's presentation — which pays the one-layer full-log-scan
//! cost at rollback/recovery time only — this implementation also keeps a
//! volatile **per-transaction slot registry** in the transaction table, so
//! that commit, rollback, clearing and checkpointing cost O(the
//! transaction's own record count) rather than O(the whole log). The
//! registry is rebuilt by the recovery analysis scan; persistent state and
//! the recovery protocol are unchanged.

use crate::aavlt::Aavlt;
use crate::config::{LogLayers, Policy, RewindConfig};
use crate::log::{RecoverableLog, SlotId};
use crate::record::{LogRecord, RecordType, RECORD_SIZE};
use crate::{Result, RewindError};
use parking_lot::Mutex;
use rewind_nvm::{NvmPool, PAddr};
use rewind_obs::{EventKind, Obs};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transaction identifier.
pub type TxId = u64;

/// Persistent root layout (inside the pool's user root region):
/// `magic, fingerprint, log header, index root cell, index meta-log header`.
const ROOT_MAGIC: u64 = 0x5245_5749_4e44_524f; // "REWINDRO"
const ROOT_WORDS: u64 = 5;
const RW_MAGIC: u64 = 0;
const RW_FINGERPRINT: u64 = 1;
const RW_LOG_HEADER: u64 = 2;
const RW_INDEX_ROOT: u64 = 3;
const RW_INDEX_META: u64 = 4;

/// Lifecycle state of a transaction, as seen by the (volatile) transaction
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Started and not yet committed or rolled back.
    Running,
    /// A rollback started (a ROLLBACK record exists) but has not completed.
    Aborted,
    /// Prepared in a two-phase commit (a PREPARE record exists, no END): the
    /// transaction is *in doubt* — it may neither commit nor roll back until
    /// the coordinator's decision is known. Recovery leaves such
    /// transactions untouched; see [`TransactionManager::in_doubt`].
    Prepared,
    /// Committed or fully rolled back (an END record exists).
    Finished,
}

/// Volatile location of one of a transaction's own log records (one-layer
/// backend): everything needed to clear or undo the record without scanning
/// the log. The registry these live in is the volatile dual of the two-layer
/// configuration's per-transaction chain — it makes commit, rollback and
/// clearing cost O(the transaction's own records) instead of O(the whole
/// log), while recovery (which cannot trust volatile state) still rebuilds
/// it from the analysis scan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SlotRef {
    /// Where the record sits in the log (for clearing).
    pub(crate) slot: SlotId,
    /// Address of the record payload (for re-reading it during undo and
    /// deferred-deallocation processing).
    pub(crate) addr: PAddr,
    /// Record type, cached so clearing never touches NVM for non-DELETEs.
    pub(crate) rtype: RecordType,
    /// Record LSN, cached for the checkpoint cut-off test.
    pub(crate) lsn: u64,
}

/// Volatile transaction-table entry. Each entry is shared behind its own
/// mutex so that an operation takes the table lock once (to fetch the
/// handle) and then works on per-transaction state without further global
/// round-trips.
#[derive(Debug)]
pub(crate) struct TxEntry {
    pub(crate) status: TxStatus,
    /// Per-transaction slot registry (one-layer backend; empty for
    /// two-layer, whose AVL index already chains records by transaction —
    /// the `prev` back-chain lives in the records themselves).
    pub(crate) slots: Vec<SlotRef>,
}

impl TxEntry {
    fn new(status: TxStatus) -> TxEntry {
        TxEntry::with_slots(status, Vec::new())
    }

    /// Entry with a pre-built slot registry (recovery's analysis scan).
    pub(crate) fn with_slots(status: TxStatus, slots: Vec<SlotRef>) -> TxEntry {
        TxEntry { status, slots }
    }
}

/// Shared handle to one transaction's volatile state.
pub(crate) type TxHandle = Arc<Mutex<TxEntry>>;

/// What one pass over the log yields: per-transaction statuses and slot
/// registries, leftover CHECKPOINT markers, and the counter high-water
/// marks. Produced by [`analyze_records`]; consumed by crash recovery's
/// analysis phase and by the clean-attach scan.
#[derive(Debug, Default)]
pub(crate) struct LogAnalysis {
    pub(crate) statuses: HashMap<TxId, TxStatus>,
    pub(crate) registries: HashMap<TxId, Vec<SlotRef>>,
    pub(crate) markers: Vec<SlotRef>,
    pub(crate) max_lsn: u64,
    pub(crate) max_txid: u64,
}

impl LogAnalysis {
    /// Builds the volatile table entry for `txid`, moving its rebuilt slot
    /// registry out of the analysis. Both consumers of the analysis (crash
    /// recovery and the clean-attach scan) go through this, so registry
    /// handling cannot diverge between the two paths.
    pub(crate) fn take_entry(&mut self, txid: TxId, status: TxStatus) -> TxHandle {
        Arc::new(Mutex::new(TxEntry::with_slots(
            status,
            self.registries.remove(&txid).unwrap_or_default(),
        )))
    }
}

/// Derives transaction statuses (END → finished, ROLLBACK without END →
/// aborted, otherwise running), one-layer slot registries and CHECKPOINT
/// marker slots from a log scan. This is the single definition of the
/// analysis both recovery and clean attach perform.
pub(crate) fn analyze_records(records: &[(RecordLocation, PAddr, LogRecord)]) -> LogAnalysis {
    let mut out = LogAnalysis::default();
    for (loc, addr, rec) in records {
        out.max_lsn = out.max_lsn.max(rec.lsn);
        if rec.rtype == RecordType::Checkpoint {
            if let RecordLocation::Slot(slot) = loc {
                out.markers.push(SlotRef {
                    slot: *slot,
                    addr: *addr,
                    rtype: rec.rtype,
                    lsn: rec.lsn,
                });
            }
            continue;
        }
        if rec.txid == u64::MAX {
            continue;
        }
        out.max_txid = out.max_txid.max(rec.txid);
        let status = out.statuses.entry(rec.txid).or_insert(TxStatus::Running);
        match rec.rtype {
            RecordType::End => *status = TxStatus::Finished,
            RecordType::Rollback if *status != TxStatus::Finished => {
                *status = TxStatus::Aborted;
            }
            // PREPARE only upgrades a still-running transaction: a later
            // ROLLBACK (coordinator decided abort) or END wins regardless of
            // the order the records are visited in.
            RecordType::Prepare if *status == TxStatus::Running => {
                *status = TxStatus::Prepared;
            }
            _ => {}
        }
        if let RecordLocation::Slot(slot) = loc {
            out.registries.entry(rec.txid).or_default().push(SlotRef {
                slot: *slot,
                addr: *addr,
                rtype: rec.rtype,
                lsn: rec.lsn,
            });
        }
    }
    out
}

/// Aggregate counters exposed for tests and the benchmark harness.
#[derive(Debug, Default)]
pub struct TmStats {
    pub(crate) begun: AtomicU64,
    pub(crate) committed: AtomicU64,
    pub(crate) prepared: AtomicU64,
    pub(crate) rolled_back: AtomicU64,
    pub(crate) read_only_finished: AtomicU64,
    pub(crate) records_logged: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    pub(crate) recoveries: AtomicU64,
}

/// A point-in-time copy of [`TmStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TmStatsSnapshot {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions prepared for a two-phase commit.
    pub prepared: u64,
    /// Transactions rolled back (explicitly or by recovery).
    pub rolled_back: u64,
    /// Transactions retired through the record-less read-only path
    /// ([`TransactionManager::finish_read_only`]) — no END record, no log
    /// traffic.
    pub read_only_finished: u64,
    /// Log records appended.
    pub records_logged: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Recoveries performed.
    pub recoveries: u64,
}

impl TmStatsSnapshot {
    /// Component-wise sum, for aggregating the managers of independent
    /// partitions (e.g. the shards of a sharded store) into one view.
    pub fn merge(&self, other: &TmStatsSnapshot) -> TmStatsSnapshot {
        TmStatsSnapshot {
            begun: self.begun + other.begun,
            committed: self.committed + other.committed,
            prepared: self.prepared + other.prepared,
            rolled_back: self.rolled_back + other.rolled_back,
            read_only_finished: self.read_only_finished + other.read_only_finished,
            records_logged: self.records_logged + other.records_logged,
            checkpoints: self.checkpoints + other.checkpoints,
            recoveries: self.recoveries + other.recoveries,
        }
    }
}

/// Storage backend for log records: the one-layer configurations keep them in
/// the recoverable log directly; the two-layer configurations keep them in the
/// atomic AVL tree (whose own updates are logged in its private list).
#[derive(Debug)]
pub(crate) enum Backend {
    /// One-layer: records live in the recoverable log.
    One(RecoverableLog),
    /// Two-layer: records live in per-transaction chains indexed by the AAVLT.
    Two(Aavlt),
}

/// The REWIND transaction recovery manager.
#[derive(Debug)]
pub struct TransactionManager {
    pub(crate) pool: Arc<NvmPool>,
    pub(crate) cfg: RewindConfig,
    pub(crate) backend: Backend,
    pub(crate) next_txid: AtomicU64,
    pub(crate) next_lsn: AtomicU64,
    pub(crate) table: Mutex<HashMap<TxId, TxHandle>>,
    /// Slots of CHECKPOINT marker records still in the one-layer log
    /// (volatile; rebuilt by the recovery analysis scan). Checkpoints clear
    /// superseded markers from here instead of rediscovering them by scan.
    pub(crate) ckpt_slots: Mutex<Vec<SlotRef>>,
    pub(crate) stats: TmStats,
    /// Records appended since the last checkpoint (drives automatic
    /// checkpointing under the no-force policy).
    pub(crate) records_since_checkpoint: AtomicU64,
    /// Report of the most recent recovery pass run by this manager, if any
    /// (surfaced so a multi-pool front-end can aggregate recovery work).
    pub(crate) last_recovery: Mutex<Option<crate::recovery::RecoveryReport>>,
    /// Serializes checkpoints and whole-log clearing against each other.
    pub(crate) checkpoint_lock: Mutex<()>,
    /// Observability handle: lifecycle trace events and commit/recovery
    /// latency histograms. Disabled (single-branch no-ops) unless the
    /// manager was created through
    /// [`TransactionManager::create_with_obs`] /
    /// [`TransactionManager::open_with_obs`] with an enabled handle.
    pub(crate) obs: Obs,
}

impl TransactionManager {
    // ------------------------------------------------------------------
    // Lifecycle
    // ------------------------------------------------------------------

    /// Creates a fresh REWIND instance in `pool`, overwriting any existing
    /// root. Use [`TransactionManager::open`] to attach to existing data.
    pub fn create(pool: Arc<NvmPool>, cfg: RewindConfig) -> Result<Self> {
        Self::create_with_obs(pool, cfg, Obs::disabled())
    }

    /// [`TransactionManager::create`] with an explicit observability handle:
    /// transaction lifecycle events and commit latency flow into `obs` when
    /// it is enabled.
    pub fn create_with_obs(pool: Arc<NvmPool>, cfg: RewindConfig, obs: Obs) -> Result<Self> {
        let backend = match cfg.layers {
            LogLayers::OneLayer => {
                Backend::One(RecoverableLog::create(Arc::clone(&pool), &cfg)?.with_obs(obs.clone()))
            }
            LogLayers::TwoLayer => Backend::Two(Aavlt::create(Arc::clone(&pool), &cfg)?),
        };
        let tm = TransactionManager {
            pool,
            cfg,
            backend,
            next_txid: AtomicU64::new(1),
            next_lsn: AtomicU64::new(1),
            table: Mutex::new(HashMap::new()),
            ckpt_slots: Mutex::new(Vec::new()),
            stats: TmStats::default(),
            records_since_checkpoint: AtomicU64::new(0),
            checkpoint_lock: Mutex::new(()),
            last_recovery: Mutex::new(None),
            obs,
        };
        tm.persist_root();
        tm.pool.mark_in_use();
        Ok(tm)
    }

    /// Attaches to the REWIND instance stored in `pool`, creating a fresh one
    /// if the pool holds none. If the pool was not shut down cleanly the full
    /// recovery procedure runs before the manager is returned.
    pub fn open(pool: Arc<NvmPool>, cfg: RewindConfig) -> Result<Self> {
        Self::open_with_obs(pool, cfg, Obs::disabled())
    }

    /// [`TransactionManager::open`] with an explicit observability handle.
    pub fn open_with_obs(pool: Arc<NvmPool>, cfg: RewindConfig, obs: Obs) -> Result<Self> {
        let root = pool.user_root();
        if pool.read_u64(root.word(RW_MAGIC)) != ROOT_MAGIC {
            return Self::create_with_obs(pool, cfg, obs);
        }
        let stored = pool.read_u64(root.word(RW_FINGERPRINT));
        if stored != cfg.fingerprint() {
            return Err(RewindError::ConfigMismatch(format!(
                "pool was initialised with fingerprint {stored:#x}, asked to open with {:#x}",
                cfg.fingerprint()
            )));
        }
        let backend = match cfg.layers {
            LogLayers::OneLayer => {
                let header = PAddr::new(pool.read_u64(root.word(RW_LOG_HEADER)));
                Backend::One(
                    RecoverableLog::attach(Arc::clone(&pool), &cfg, header)?.with_obs(obs.clone()),
                )
            }
            LogLayers::TwoLayer => {
                let index_root = crate::aavlt::AavltRoot {
                    root_cell: PAddr::new(pool.read_u64(root.word(RW_INDEX_ROOT))),
                    meta_log_header: PAddr::new(pool.read_u64(root.word(RW_INDEX_META))),
                };
                Backend::Two(Aavlt::attach(Arc::clone(&pool), &cfg, index_root)?)
            }
        };
        let tm = TransactionManager {
            pool: Arc::clone(&pool),
            cfg,
            backend,
            next_txid: AtomicU64::new(1),
            next_lsn: AtomicU64::new(1),
            table: Mutex::new(HashMap::new()),
            ckpt_slots: Mutex::new(Vec::new()),
            stats: TmStats::default(),
            records_since_checkpoint: AtomicU64::new(0),
            checkpoint_lock: Mutex::new(()),
            last_recovery: Mutex::new(None),
            obs,
        };
        if !pool.was_clean_shutdown() {
            tm.recover()?;
        } else {
            tm.bump_counters_past_log()?;
        }
        tm.pool.mark_in_use();
        Ok(tm)
    }

    /// Flushes everything and marks the pool as cleanly shut down, so the
    /// next [`TransactionManager::open`] skips recovery.
    pub fn shutdown(&self) -> Result<()> {
        if self.cfg.policy == Policy::NoForce {
            self.checkpoint()?;
        }
        self.pool.mark_clean_shutdown();
        Ok(())
    }

    /// Writes the durable root pointers for the current backend.
    pub(crate) fn persist_root(&self) {
        let root = self.pool.user_root();
        self.pool
            .write_u64_nt(root.word(RW_FINGERPRINT), self.cfg.fingerprint());
        match &self.backend {
            Backend::One(log) => {
                self.pool
                    .write_u64_nt(root.word(RW_LOG_HEADER), log.header().offset());
                self.pool.write_u64_nt(root.word(RW_INDEX_ROOT), 0);
                self.pool.write_u64_nt(root.word(RW_INDEX_META), 0);
            }
            Backend::Two(index) => {
                let r = index.durable_root();
                self.pool.write_u64_nt(root.word(RW_LOG_HEADER), 0);
                self.pool
                    .write_u64_nt(root.word(RW_INDEX_ROOT), r.root_cell.offset());
                self.pool
                    .write_u64_nt(root.word(RW_INDEX_META), r.meta_log_header.offset());
            }
        }
        self.pool.sfence();
        // The magic goes in last so a partially written root is never taken
        // for a valid one.
        self.pool.write_u64_nt(root.word(RW_MAGIC), ROOT_MAGIC);
        self.pool.sfence();
        debug_assert!(ROOT_WORDS as usize * 8 <= self.pool.user_root_size());
    }

    /// After a clean attach there is no recovery pass to discover the highest
    /// LSN/transaction id in the log, so scan for them explicitly. The same
    /// scan registers any *finished* transactions still in the log (e.g. a
    /// commit that raced the clean shutdown's checkpoint) and any leftover
    /// CHECKPOINT markers, so the next checkpoint can clear them from the
    /// registries; it also re-registers *prepared* (in-doubt) transactions so
    /// a coordinator can still resolve them after a clean restart. Running
    /// transactions stay unregistered, exactly as the scan-based checkpoint
    /// (which only cleared ENDed transactions) treated them.
    fn bump_counters_past_log(&self) -> Result<()> {
        let records = self.all_records(false)?;
        let mut analysis = analyze_records(&records);
        self.next_lsn.store(analysis.max_lsn + 1, Ordering::SeqCst);
        self.next_txid
            .store(analysis.max_txid + 1, Ordering::SeqCst);
        {
            let statuses = std::mem::take(&mut analysis.statuses);
            let mut table = self.table.lock();
            for (txid, status) in statuses {
                if status == TxStatus::Finished || status == TxStatus::Prepared {
                    table.insert(txid, analysis.take_entry(txid, status));
                }
            }
        }
        *self.ckpt_slots.lock() = analysis.markers;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The pool this manager operates on.
    pub fn pool(&self) -> &Arc<NvmPool> {
        &self.pool
    }

    /// The configuration this manager was opened with.
    pub fn config(&self) -> &RewindConfig {
        &self.cfg
    }

    /// The observability handle this manager records into (disabled unless
    /// one was supplied at creation).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Number of live log records (both layers).
    pub fn log_len(&self) -> u64 {
        match &self.backend {
            Backend::One(log) => log.len(),
            Backend::Two(index) => index.txids().iter().map(|t| index.record_count(*t)).sum(),
        }
    }

    /// A snapshot of the manager's counters.
    pub fn stats(&self) -> TmStatsSnapshot {
        TmStatsSnapshot {
            begun: self.stats.begun.load(Ordering::Relaxed),
            committed: self.stats.committed.load(Ordering::Relaxed),
            prepared: self.stats.prepared.load(Ordering::Relaxed),
            rolled_back: self.stats.rolled_back.load(Ordering::Relaxed),
            read_only_finished: self.stats.read_only_finished.load(Ordering::Relaxed),
            records_logged: self.stats.records_logged.load(Ordering::Relaxed),
            checkpoints: self.stats.checkpoints.load(Ordering::Relaxed),
            recoveries: self.stats.recoveries.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn next_lsn(&self) -> u64 {
        self.next_lsn.fetch_add(1, Ordering::SeqCst)
    }

    /// Returns every live record as `(location, payload address, record)`
    /// triples in log order (one-layer) or grouped by transaction
    /// (two-layer). Recovery builds on this — it is the analysis scan that
    /// also rebuilds the per-transaction slot registries.
    pub(crate) fn all_records(
        &self,
        trust_watermark: bool,
    ) -> Result<Vec<(RecordLocation, PAddr, LogRecord)>> {
        match &self.backend {
            Backend::One(log) => Ok(log
                .scan(trust_watermark)?
                .into_iter()
                .map(|e| (RecordLocation::Slot(e.slot), e.record_addr, e.record))
                .collect()),
            Backend::Two(index) => {
                let mut out = Vec::new();
                for txid in index.txids() {
                    for (addr, rec) in index.records_of(txid)?.into_iter().rev() {
                        out.push((RecordLocation::Chained { txid, addr }, addr, rec));
                    }
                }
                // Order by LSN so forward scans see a global log order.
                out.sort_by_key(|(_, _, r)| r.lsn);
                Ok(out)
            }
        }
    }

    // ------------------------------------------------------------------
    // The programmer-facing API (Listing 2 of the paper)
    // ------------------------------------------------------------------

    /// Starts a new transaction and returns its identifier
    /// (`tm->getNextID()` in the paper).
    pub fn begin(&self) -> TxId {
        let id = self.next_txid.fetch_add(1, Ordering::SeqCst);
        self.stats.begun.fetch_add(1, Ordering::Relaxed);
        self.table
            .lock()
            .insert(id, Arc::new(Mutex::new(TxEntry::new(TxStatus::Running))));
        self.obs.emit(EventKind::TxnBegin, id, 0, 0);
        id
    }

    /// Logs an update of the 8-byte word at `addr` from `old` to `new` on
    /// behalf of transaction `tx` (`tm->log(...)` in the paper). The record
    /// is durably in the log before this function returns (or, for the Batch
    /// structure, before any *forced* user write can overtake it).
    ///
    /// The caller performs the store itself afterwards, exactly like the
    /// expanded code in Listing 2; [`Transaction::write_u64`] does both.
    pub fn log_update(&self, tx: TxId, addr: PAddr, old: u64, new: u64) -> Result<()> {
        let handle = self.running_handle(tx)?;
        let mut rec = LogRecord::update(self.next_lsn(), tx, addr, old, new);
        self.append_with(tx, Some(&handle), &mut rec)?;
        self.maybe_auto_checkpoint()?;
        Ok(())
    }

    /// Logs a deferred de-allocation (the paper's DELETE record): the memory
    /// at `addr` is returned to the allocator only after the transaction's
    /// records are cleared (commit-time under force, checkpoint-time under
    /// no-force), because freeing earlier could not be undone.
    pub fn log_delete(&self, tx: TxId, addr: PAddr, size: u64) -> Result<()> {
        let handle = self.running_handle(tx)?;
        let mut rec = LogRecord::delete(self.next_lsn(), tx, addr, size);
        self.append_with(tx, Some(&handle), &mut rec)?;
        self.maybe_auto_checkpoint()?;
        Ok(())
    }

    /// Logs and performs a user update in one call, honouring the force
    /// policy: forced updates go to NVM with a non-temporal store, unforced
    /// updates stay in the cache until a checkpoint.
    pub fn write_u64(&self, tx: TxId, addr: PAddr, new: u64) -> Result<()> {
        let handle = self.running_handle(tx)?;
        let old = self.pool.read_u64(addr);
        if old == new {
            return Ok(());
        }
        let mut rec = LogRecord::update(self.next_lsn(), tx, addr, old, new);
        self.append_with(tx, Some(&handle), &mut rec)?;
        self.maybe_auto_checkpoint()?;
        match self.cfg.policy {
            Policy::Force => {
                // WAL: the record group must be persistent before the data.
                if let Backend::One(log) = &self.backend {
                    log.flush_pending()?;
                }
                self.pool.write_u64_nt(addr, new);
            }
            Policy::NoForce => self.pool.write_u64(addr, new),
        }
        Ok(())
    }

    /// Commits transaction `tx` (`tm->commit(...)` in the paper).
    ///
    /// Under the force policy all of the transaction's updates are already in
    /// NVM; commit fences, writes the END record and clears the transaction's
    /// log records. Under no-force only the END record is written; records are
    /// cleared by a later checkpoint.
    ///
    /// The whole path costs O(the transaction's own record count): clearing
    /// consumes the volatile slot registry instead of rescanning the log.
    pub fn commit(&self, tx: TxId) -> Result<()> {
        let t0 = self.obs.clock();
        let handle = self.running_handle(tx)?;
        if self.cfg.policy == Policy::Force {
            self.pool.sfence();
            self.obs.emit(EventKind::TxnFence, tx, 0, 0);
        }
        self.commit_with(tx, &handle)?;
        if t0.is_some() {
            let ns = Obs::elapsed_ns(t0);
            self.obs.metrics().commit_ns.record(ns);
            self.obs.emit(EventKind::TxnCommit, tx, ns, 0);
        }
        Ok(())
    }

    /// The shared commit tail (END record, status flip, force-policy
    /// clearing), reached from a Running transaction
    /// ([`TransactionManager::commit`], which fences its user data first) or
    /// a Prepared one ([`TransactionManager::commit_prepared`], whose
    /// prepare already fenced).
    fn commit_with(&self, tx: TxId, handle: &TxHandle) -> Result<()> {
        let mut end = LogRecord::end(self.next_lsn(), tx);
        self.append_with(tx, Some(handle), &mut end)?;
        if self.pool.explicit_write_back() {
            // Media with explicit write-back (file pools) only see an
            // NT-stored END record at a fence — until then the commit is
            // not an acknowledgeable fact, and a pool death would strand
            // the transaction unfinished (or, worse, in doubt after a 2PC
            // whose coordinator already retired the decision). Heap pools
            // persist NT stores eagerly and keep the fence-free commit
            // tail the paper's cost model assumes.
            if let Backend::One(log) = &self.backend {
                log.flush_pending()?;
            }
            self.pool.sfence();
        }
        handle.lock().status = TxStatus::Finished;
        self.stats.committed.fetch_add(1, Ordering::Relaxed);
        if self.cfg.policy == Policy::Force {
            self.clear_with(tx, handle, true)?;
        }
        Ok(())
    }

    /// Prepares transaction `tx` for a two-phase commit on behalf of a
    /// coordinator identified by the global transaction id `gtid`.
    ///
    /// On return the transaction's log records — including the PREPARE
    /// record carrying `gtid` — are durable, so the transaction survives a
    /// crash *in doubt*: recovery will neither commit nor roll it back (see
    /// [`TransactionManager::in_doubt`]). The only legal continuations are
    /// [`TransactionManager::commit_prepared`] and
    /// [`TransactionManager::rollback_prepared`].
    pub fn prepare(&self, tx: TxId, gtid: u64) -> Result<()> {
        let handle = self.running_handle(tx)?;
        if self.cfg.policy == Policy::Force {
            // Force policy: the user data written so far must be durable
            // before the promise is made, like the pre-commit fence.
            self.pool.sfence();
        }
        let mut rec = LogRecord::prepare(self.next_lsn(), tx, gtid);
        self.append_with(tx, Some(&handle), &mut rec)?;
        // The promise is only as durable as the log: push out any
        // batch-buffered records and fence. After this point redo can
        // reconstruct every update of the transaction from the log alone.
        if let Backend::One(log) = &self.backend {
            log.flush_pending()?;
        }
        self.pool.sfence();
        self.obs.emit(EventKind::TxnFence, tx, 0, 0);
        handle.lock().status = TxStatus::Prepared;
        self.stats.prepared.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Commits a transaction previously prepared with
    /// [`TransactionManager::prepare`] (the coordinator decided commit).
    pub fn commit_prepared(&self, tx: TxId) -> Result<()> {
        let handle = self.prepared_handle(tx)?;
        self.commit_with(tx, &handle)
    }

    /// Rolls back a transaction previously prepared with
    /// [`TransactionManager::prepare`] (the coordinator decided abort, or the
    /// recovery resolution presumed it).
    pub fn rollback_prepared(&self, tx: TxId) -> Result<()> {
        let handle = self.prepared_handle(tx)?;
        self.rollback_with(tx, &handle)
    }

    /// Finishes a transaction that never logged a record — the read-only
    /// participant path of a two-phase commit. The transaction's volatile
    /// table entry is simply retired: no PREPARE, no END record, no fence,
    /// no log traffic at all, which is why a read-only participant can never
    /// be found in doubt by recovery (there is nothing on the medium to find).
    ///
    /// Errors with [`RewindError::InvalidTransactionState`] if the
    /// transaction did log something (callers must then commit or roll back
    /// normally) or is not running.
    pub fn finish_read_only(&self, tx: TxId) -> Result<()> {
        let handle = self.running_handle(tx)?;
        let empty = match &self.backend {
            Backend::One(_) => handle.lock().slots.is_empty(),
            Backend::Two(index) => index.records_of(tx)?.is_empty(),
        };
        if !empty {
            return Err(RewindError::InvalidTransactionState {
                txid: tx,
                reason: "transaction logged records; read-only finish needs an empty log",
            });
        }
        handle.lock().status = TxStatus::Finished;
        self.table.lock().remove(&tx);
        self.stats
            .read_only_finished
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Every in-doubt transaction this manager knows of, as
    /// `(local transaction id, coordinator gtid)` pairs in ascending local
    /// id order. A transaction is in doubt when a PREPARE record exists but
    /// no decision was applied — after a crash these are exactly the
    /// transactions recovery refused to roll back.
    pub fn in_doubt(&self) -> Result<Vec<(TxId, u64)>> {
        let candidates: Vec<(TxId, TxHandle)> = self
            .table
            .lock()
            .iter()
            .map(|(t, h)| (*t, Arc::clone(h)))
            .collect();
        let mut out = Vec::new();
        for (txid, handle) in candidates {
            let slots: Vec<SlotRef> = {
                let e = handle.lock();
                if e.status != TxStatus::Prepared {
                    continue;
                }
                e.slots.clone()
            };
            let gtid = match &self.backend {
                Backend::One(_) => slots
                    .iter()
                    .find(|r| r.rtype == RecordType::Prepare)
                    .map(|r| LogRecord::read_from(&self.pool, r.addr).map(|rec| rec.gtid()))
                    .transpose()?,
                Backend::Two(index) => index
                    .records_of(txid)?
                    .iter()
                    .find(|(_, r)| r.rtype == RecordType::Prepare)
                    .map(|(_, r)| r.gtid()),
            };
            if let Some(gtid) = gtid {
                out.push((txid, gtid));
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Rolls transaction `tx` back: every logged update is undone (newest
    /// first), a compensation record is written for each undo, and an END
    /// record marks completion. Under the force policy the transaction's
    /// records are cleared afterwards, as after commit.
    pub fn rollback(&self, tx: TxId) -> Result<()> {
        let handle = self.running_handle(tx)?;
        self.rollback_with(tx, &handle)
    }

    /// The shared rollback body, reached from a Running transaction
    /// ([`TransactionManager::rollback`]) or a Prepared one
    /// ([`TransactionManager::rollback_prepared`]).
    fn rollback_with(&self, tx: TxId, handle: &TxHandle) -> Result<()> {
        self.obs.emit(EventKind::TxnRollback, tx, 0, 0);
        let mut rollback_marker = LogRecord::rollback(self.next_lsn(), tx);
        self.append_with(tx, Some(handle), &mut rollback_marker)?;
        handle.lock().status = TxStatus::Aborted;

        // Collect the transaction's UPDATE records, oldest first. One-layer:
        // read them back through the slot registry (only the transaction's
        // own records — runtime rollback no longer pays the full-log-scan
        // cost that Figure 4 left measures for post-crash recovery);
        // two-layer: follow the per-transaction chain through the AVL index.
        let updates: Vec<LogRecord> = match &self.backend {
            Backend::One(_) => {
                let own: Vec<SlotRef> = handle
                    .lock()
                    .slots
                    .iter()
                    .filter(|r| r.rtype == RecordType::Update)
                    .copied()
                    .collect();
                own.iter()
                    .map(|r| LogRecord::read_from(&self.pool, r.addr))
                    .collect::<Result<_>>()?
            }
            Backend::Two(index) => index
                .records_of(tx)?
                .into_iter()
                .map(|(_, r)| r)
                .rev()
                .filter(|r| r.rtype == RecordType::Update)
                .collect(),
        };
        for rec in updates.iter().rev() {
            self.undo_with(tx, Some(handle), rec)?;
        }
        let mut end = LogRecord::end(self.next_lsn(), tx);
        self.append_with(tx, Some(handle), &mut end)?;
        handle.lock().status = TxStatus::Finished;
        self.stats.rolled_back.fetch_add(1, Ordering::Relaxed);
        if self.cfg.policy == Policy::Force {
            self.clear_with(tx, handle, true)?;
        }
        Ok(())
    }

    /// Runs `f` inside a transaction: commits on `Ok`, rolls back on `Err`.
    /// This is the library equivalent of the paper's
    /// `persistent atomic { ... }` block.
    pub fn run<T>(&self, f: impl FnOnce(&mut Transaction<'_>) -> Result<T>) -> Result<T> {
        let id = self.begin();
        let mut tx = Transaction { tm: self, id };
        match f(&mut tx) {
            Ok(v) => {
                self.commit(id)?;
                Ok(v)
            }
            Err(e) => {
                self.rollback(id)?;
                Err(e)
            }
        }
    }

    // ------------------------------------------------------------------
    // Internals shared with recovery / checkpointing
    // ------------------------------------------------------------------

    /// Fetches the shared handle of `tx` with a single table-lock round-trip.
    pub(crate) fn handle(&self, tx: TxId) -> Option<TxHandle> {
        self.table.lock().get(&tx).cloned()
    }

    /// Fetches the handle of `tx`, failing unless the transaction is running.
    /// This is the one guarded table access an operation performs; everything
    /// afterwards works on the per-transaction state.
    pub(crate) fn running_handle(&self, tx: TxId) -> Result<TxHandle> {
        let handle = self.handle(tx).ok_or(RewindError::UnknownTransaction(tx))?;
        if handle.lock().status == TxStatus::Running {
            Ok(handle)
        } else {
            Err(RewindError::InvalidTransactionState {
                txid: tx,
                reason: "transaction is no longer running",
            })
        }
    }

    /// Fetches the handle of `tx`, failing unless the transaction is in the
    /// Prepared (in-doubt) state — the guard for the decision-application
    /// half of the two-phase commit protocol.
    pub(crate) fn prepared_handle(&self, tx: TxId) -> Result<TxHandle> {
        let handle = self.handle(tx).ok_or(RewindError::UnknownTransaction(tx))?;
        if handle.lock().status == TxStatus::Prepared {
            Ok(handle)
        } else {
            Err(RewindError::InvalidTransactionState {
                txid: tx,
                reason: "transaction is not prepared",
            })
        }
    }

    pub(crate) fn set_status(&self, tx: TxId, status: TxStatus) {
        if let Some(handle) = self.handle(tx) {
            handle.lock().status = status;
        }
    }

    /// Appends a record on behalf of `tx`, looking the transaction's handle
    /// up first. Callers that already hold the handle use
    /// [`TransactionManager::append_with`] directly.
    pub(crate) fn append_for(&self, tx: TxId, rec: &mut LogRecord) -> Result<PAddr> {
        let handle = self.handle(tx);
        self.append_with(tx, handle.as_ref(), rec)
    }

    /// Appends a record on behalf of `tx` through whichever backend is
    /// configured, maintaining the per-transaction slot registry (one-layer)
    /// or the back-chain (two-layer).
    pub(crate) fn append_with(
        &self,
        tx: TxId,
        handle: Option<&TxHandle>,
        rec: &mut LogRecord,
    ) -> Result<PAddr> {
        self.stats.records_logged.fetch_add(1, Ordering::Relaxed);
        self.records_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        self.obs.emit(EventKind::TxnAppend, tx, rec.lsn, 0);
        match &self.backend {
            Backend::One(log) => {
                let (addr, slot) = log.append(rec)?;
                if let Some(h) = handle {
                    h.lock().slots.push(SlotRef {
                        slot,
                        addr,
                        rtype: rec.rtype,
                        lsn: rec.lsn,
                    });
                }
                Ok(addr)
            }
            Backend::Two(index) => {
                // The record is written to NVM first, then indexed; the index
                // insert links it into the transaction's chain (setting its
                // `prev` field) and is itself crash-atomic.
                let addr = self.pool.alloc(RECORD_SIZE)?;
                rec.write_to_nt(&self.pool, addr);
                self.pool.sfence();
                index.insert_record(tx, addr)?;
                Ok(addr)
            }
        }
    }

    /// Undoes a single UPDATE record, looking the transaction's handle up
    /// first (used by recovery, which works from transaction ids).
    pub(crate) fn undo_one(&self, tx: TxId, rec: &LogRecord) -> Result<()> {
        let handle = self.handle(tx);
        self.undo_with(tx, handle.as_ref(), rec)
    }

    /// Undoes a single UPDATE record: writes a CLR and restores the old
    /// value, forcing it to NVM under the force policy (the undo must be
    /// persistent so the log can be cleared afterwards).
    pub(crate) fn undo_with(
        &self,
        tx: TxId,
        handle: Option<&TxHandle>,
        rec: &LogRecord,
    ) -> Result<()> {
        let mut clr = LogRecord::clr(self.next_lsn(), tx, rec.addr, rec.old, rec.prev);
        // For the one-layer log there is no per-transaction chain; the CLR's
        // undo_next instead records the LSN of the compensated record so a
        // restarted recovery can skip records that were already undone.
        if matches!(self.backend, Backend::One(_)) {
            clr.undo_next = PAddr::new(rec.lsn);
        }
        self.append_with(tx, handle, &mut clr)?;
        match self.cfg.policy {
            Policy::Force => {
                if let Backend::One(log) = &self.backend {
                    log.flush_pending()?;
                }
                self.pool.write_u64_nt(rec.addr, rec.old);
            }
            Policy::NoForce => self.pool.write_u64(rec.addr, rec.old),
        }
        Ok(())
    }

    /// Clears every log record of `tx`, processing DELETE records (performing
    /// the deferred de-allocations) when `process_deletes` is true, and
    /// removing the END record last so an interrupted clearing restarts
    /// identically (Section 4.6).
    pub(crate) fn clear_transaction(&self, tx: TxId, process_deletes: bool) -> Result<()> {
        match self.handle(tx) {
            Some(handle) => self.clear_with(tx, &handle, process_deletes),
            // No volatile entry (only possible for orphans of an earlier
            // attach): fall back to discovering the records by scan. Normal
            // commit/rollback never reaches this.
            None => self.clear_by_scan(tx, process_deletes),
        }
    }

    /// Clears `tx`'s records by consuming its slot registry — O(the
    /// transaction's own record count), no log scan.
    pub(crate) fn clear_with(
        &self,
        tx: TxId,
        handle: &TxHandle,
        process_deletes: bool,
    ) -> Result<()> {
        match &self.backend {
            Backend::One(log) => {
                let slots = std::mem::take(&mut handle.lock().slots);
                self.clear_registered_slots(log, handle, slots, process_deletes)?;
            }
            Backend::Two(_) => return self.clear_by_scan(tx, process_deletes),
        }
        self.table.lock().remove(&tx);
        Ok(())
    }

    /// Clears an already-drained batch of registered slots, END records last.
    /// On a mid-batch error the unprocessed tail is pushed back into the
    /// registry, so a retry (or a later checkpoint) resumes where this
    /// attempt stopped instead of orphaning records in the log.
    pub(crate) fn clear_registered_slots(
        &self,
        log: &RecoverableLog,
        handle: &TxHandle,
        slots: Vec<SlotRef>,
        process_deletes: bool,
    ) -> Result<()> {
        let (mut work, ends): (Vec<SlotRef>, Vec<SlotRef>) =
            slots.into_iter().partition(|r| r.rtype != RecordType::End);
        work.extend(ends);
        for (i, r) in work.iter().enumerate() {
            let step = (|| {
                if process_deletes && r.rtype == RecordType::Delete {
                    let rec = LogRecord::read_from(&self.pool, r.addr)?;
                    self.pool.free(rec.addr, rec.old as usize)?;
                }
                log.clear_slot(r.slot)
            })();
            if let Err(e) = step {
                handle.lock().slots.extend_from_slice(&work[i..]);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Registry-less clearing: the one-layer branch performs the full log
    /// scan (legitimate only for orphans without volatile state); the
    /// two-layer branch walks the transaction's chain through the AVL index,
    /// which is already O(own records).
    fn clear_by_scan(&self, tx: TxId, process_deletes: bool) -> Result<()> {
        match &self.backend {
            Backend::One(log) => {
                let entries = log.scan_transaction(tx)?;
                let mut end_slots = Vec::new();
                for e in &entries {
                    if e.record.rtype == RecordType::End {
                        end_slots.push(e.slot);
                        continue;
                    }
                    if process_deletes && e.record.rtype == RecordType::Delete {
                        self.pool.free(e.record.addr, e.record.old as usize)?;
                    }
                    log.clear_slot(e.slot)?;
                }
                for slot in end_slots {
                    log.clear_slot(slot)?;
                }
            }
            Backend::Two(index) => {
                let records = index.records_of(tx)?;
                for (_, rec) in &records {
                    if process_deletes && rec.rtype == RecordType::Delete {
                        self.pool.free(rec.addr, rec.old as usize)?;
                    }
                }
                index.remove_txn(tx)?;
                // Record memory is owned by the manager in the two-layer
                // configuration; release it once the index entries are gone.
                for (addr, _) in records {
                    self.pool.free(addr, RECORD_SIZE)?;
                }
            }
        }
        self.table.lock().remove(&tx);
        Ok(())
    }

    fn maybe_auto_checkpoint(&self) -> Result<()> {
        if self.cfg.policy != Policy::NoForce {
            return Ok(());
        }
        let Some(every) = self.cfg.checkpoint_every else {
            return Ok(());
        };
        if self.records_since_checkpoint.load(Ordering::Relaxed) >= every {
            self.checkpoint()?;
        }
        Ok(())
    }
}

/// Location of a record, independent of the backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordLocation {
    /// One-layer: a slot in the recoverable log.
    Slot(SlotId),
    /// Two-layer: a record chained under `txid` at `addr`.
    Chained {
        /// Owning transaction.
        txid: TxId,
        /// Record address.
        addr: PAddr,
    },
}

/// Handle passed to [`TransactionManager::run`] closures: a thin wrapper that
/// remembers the transaction id.
#[derive(Debug)]
pub struct Transaction<'a> {
    tm: &'a TransactionManager,
    id: TxId,
}

impl Transaction<'_> {
    /// The transaction identifier.
    pub fn id(&self) -> TxId {
        self.id
    }

    /// Reads an 8-byte word (no logging needed for reads).
    pub fn read_u64(&self, addr: PAddr) -> u64 {
        self.tm.pool.read_u64(addr)
    }

    /// Logs and performs an update of the word at `addr`.
    pub fn write_u64(&mut self, addr: PAddr, new: u64) -> Result<()> {
        self.tm.write_u64(self.id, addr, new)
    }

    /// Logs an update the caller will perform itself (the raw `tm->log` call
    /// of Listing 2).
    pub fn log_update(&mut self, addr: PAddr, old: u64, new: u64) -> Result<()> {
        self.tm.log_update(self.id, addr, old, new)
    }

    /// Schedules `size` bytes at `addr` for de-allocation after the
    /// transaction's records are cleared.
    pub fn defer_free(&mut self, addr: PAddr, size: u64) -> Result<()> {
        self.tm.log_delete(self.id, addr, size)
    }

    /// Aborts the transaction from inside a [`TransactionManager::run`]
    /// closure by returning an error the closure can propagate.
    pub fn abort<T>(&self, reason: &str) -> Result<T> {
        Err(RewindError::Aborted(reason.to_string()))
    }
}
