//! Two-phase-commit participant tests: the Prepared (in-doubt) state must
//! survive crashes un-resolved — recovery neither commits nor rolls a
//! prepared transaction back until the coordinator's decision is applied
//! through `commit_prepared` / `rollback_prepared`.

use rewind_core::{LogLayers, LogStructure, Policy, RewindConfig, RewindError, TransactionManager};
use rewind_nvm::{NvmPool, PAddr, PoolConfig};
use std::sync::Arc;

/// All twelve configuration combinations.
fn all_configs() -> Vec<RewindConfig> {
    let mut out = Vec::new();
    for layers in [LogLayers::OneLayer, LogLayers::TwoLayer] {
        for policy in [Policy::NoForce, Policy::Force] {
            for structure in [
                LogStructure::Simple,
                LogStructure::Optimized,
                LogStructure::Batch,
            ] {
                out.push(
                    RewindConfig {
                        structure,
                        ..RewindConfig::batch()
                    }
                    .layers(layers)
                    .policy(policy)
                    .bucket_size(16)
                    .group_size(4),
                );
            }
        }
    }
    out
}

fn pool() -> Arc<NvmPool> {
    NvmPool::new(PoolConfig::small())
}

/// Allocates `n` persistent words initialised (durably) to zero.
fn alloc_words(pool: &Arc<NvmPool>, n: u64) -> PAddr {
    let a = pool.alloc((n * 8) as usize).unwrap();
    for i in 0..n {
        pool.write_u64_nt(a.word(i), 0);
    }
    pool.sfence();
    a
}

#[test]
fn prepare_then_commit_and_rollback_without_crash() {
    for cfg in all_configs() {
        let pool = pool();
        let tm = TransactionManager::create(Arc::clone(&pool), cfg).unwrap();
        let a = alloc_words(&pool, 4);

        // Commit direction.
        let tx = tm.begin();
        tm.write_u64(tx, a.word(0), 11).unwrap();
        tm.prepare(tx, 900).unwrap();
        assert_eq!(tm.in_doubt().unwrap(), vec![(tx, 900)], "{cfg:?}");
        tm.commit_prepared(tx).unwrap();
        assert_eq!(pool.read_u64(a.word(0)), 11, "{cfg:?}");
        assert!(tm.in_doubt().unwrap().is_empty());

        // Abort direction.
        let tx = tm.begin();
        tm.write_u64(tx, a.word(0), 22).unwrap();
        tm.prepare(tx, 901).unwrap();
        tm.rollback_prepared(tx).unwrap();
        assert_eq!(pool.read_u64(a.word(0)), 11, "{cfg:?}");
        assert!(tm.in_doubt().unwrap().is_empty());

        let s = tm.stats();
        assert_eq!(s.prepared, 2);
        assert_eq!(s.rolled_back, 1);
    }
}

#[test]
fn prepared_state_gates_the_normal_api() {
    let pool = pool();
    let tm = TransactionManager::create(Arc::clone(&pool), RewindConfig::batch()).unwrap();
    let a = alloc_words(&pool, 2);
    let tx = tm.begin();
    tm.write_u64(tx, a, 1).unwrap();

    // Not prepared yet: the decision API refuses.
    assert!(matches!(
        tm.commit_prepared(tx),
        Err(RewindError::InvalidTransactionState { .. })
    ));
    assert!(matches!(
        tm.rollback_prepared(tx),
        Err(RewindError::InvalidTransactionState { .. })
    ));

    tm.prepare(tx, 7).unwrap();
    // Prepared: the ordinary single-phase API refuses (the promise holds).
    assert!(matches!(
        tm.commit(tx),
        Err(RewindError::InvalidTransactionState { .. })
    ));
    assert!(matches!(
        tm.rollback(tx),
        Err(RewindError::InvalidTransactionState { .. })
    ));
    assert!(matches!(
        tm.write_u64(tx, a, 2),
        Err(RewindError::InvalidTransactionState { .. })
    ));
    assert!(matches!(
        tm.prepare(tx, 8),
        Err(RewindError::InvalidTransactionState { .. })
    ));
    tm.commit_prepared(tx).unwrap();
}

#[test]
fn prepared_transaction_survives_power_cycle_undecided() {
    // The satellite acceptance test: a prepared-but-undecided transaction
    // must survive a power cycle with recovery neither committing nor
    // rolling it back, in every configuration; the decision is then applied
    // after recovery and must stick.
    for cfg in all_configs() {
        for decide_commit in [true, false] {
            let pool = pool();
            let tm = TransactionManager::create(Arc::clone(&pool), cfg).unwrap();
            let a = alloc_words(&pool, 4);

            // A committed bystander value that must survive everything.
            tm.run(|tx| tx.write_u64(a.word(1), 500)).unwrap();

            let tx = tm.begin();
            tm.write_u64(tx, a.word(0), 77).unwrap();
            tm.prepare(tx, 4242).unwrap();

            pool.power_cycle();
            let tm = TransactionManager::open(Arc::clone(&pool), cfg).unwrap();
            let report = tm.last_recovery().unwrap();
            assert_eq!(report.in_doubt, 1, "{cfg:?}");
            assert_eq!(report.rolled_back, 0, "{cfg:?} must not roll back in-doubt");
            assert!(
                !report.log_cleared,
                "{cfg:?}: the log still holds the in-doubt records"
            );
            assert_eq!(tm.in_doubt().unwrap(), vec![(tx, 4242)], "{cfg:?}");
            // Redo (no-force) / the force-policy write-through keep the
            // prepared update visible while the transaction is in doubt.
            assert_eq!(pool.read_u64(a.word(0)), 77, "{cfg:?}");
            assert_eq!(pool.read_u64(a.word(1)), 500, "{cfg:?}");

            if decide_commit {
                tm.commit_prepared(tx).unwrap();
                assert_eq!(pool.read_u64(a.word(0)), 77, "{cfg:?}");
            } else {
                tm.rollback_prepared(tx).unwrap();
                assert_eq!(pool.read_u64(a.word(0)), 0, "{cfg:?}");
            }
            assert!(tm.in_doubt().unwrap().is_empty());

            // The decision is durable: one more crash changes nothing.
            pool.power_cycle();
            let tm = TransactionManager::open(Arc::clone(&pool), cfg).unwrap();
            assert_eq!(tm.last_recovery().unwrap().in_doubt, 0, "{cfg:?}");
            let expect = if decide_commit { 77 } else { 0 };
            assert_eq!(pool.read_u64(a.word(0)), expect, "{cfg:?}");
            assert_eq!(pool.read_u64(a.word(1)), 500, "{cfg:?}");
        }
    }
}

#[test]
fn recovery_with_in_doubt_work_still_clears_recovered_losers() {
    // Force policy, one-layer: recovery cannot drop the whole log while an
    // in-doubt transaction holds records in it, so it clears finished
    // transactions one by one — *including* the losers this very pass
    // rolled back (they reach Finished only during recovery; filtering on
    // the analysis-time snapshot would leak their records forever, since
    // Force has no checkpoint clearing to catch them later).
    for cfg in [
        RewindConfig::batch().policy(Policy::Force),
        RewindConfig::optimized().policy(Policy::Force),
    ] {
        let pool = pool();
        let tm = TransactionManager::create(Arc::clone(&pool), cfg).unwrap();
        let a = alloc_words(&pool, 4);

        // One prepared (in-doubt) transaction and one still-running loser.
        let p = tm.begin();
        tm.write_u64(p, a.word(0), 7).unwrap();
        tm.prepare(p, 55).unwrap();
        let loser = tm.begin();
        tm.write_u64(loser, a.word(1), 9).unwrap();

        pool.power_cycle();
        let tm = TransactionManager::open(Arc::clone(&pool), cfg).unwrap();
        let report = tm.last_recovery().unwrap();
        assert_eq!(report.in_doubt, 1, "{cfg:?}");
        assert_eq!(report.rolled_back, 1, "{cfg:?}");
        assert_eq!(pool.read_u64(a.word(1)), 0, "{cfg:?}: loser undone");

        // Resolving the in-doubt transaction must leave an empty log: the
        // loser's records were cleared by recovery, the prepared ones by
        // the decision.
        tm.commit_prepared(p).unwrap();
        assert_eq!(tm.log_len(), 0, "{cfg:?}: no leaked records");
        assert_eq!(pool.read_u64(a.word(0)), 7, "{cfg:?}");
    }
}

#[test]
fn in_doubt_survives_repeated_power_cycles() {
    for cfg in [
        RewindConfig::batch(),
        RewindConfig::batch().policy(Policy::Force),
    ] {
        let pool = pool();
        let tm = TransactionManager::create(Arc::clone(&pool), cfg).unwrap();
        let a = alloc_words(&pool, 2);
        let tx = tm.begin();
        tm.write_u64(tx, a, 9).unwrap();
        tm.prepare(tx, 31).unwrap();

        // Two consecutive crashes before any decision: still in doubt.
        let mut tm = tm;
        for cycle in 0..2 {
            pool.power_cycle();
            tm = TransactionManager::open(Arc::clone(&pool), cfg).unwrap();
            assert_eq!(
                tm.in_doubt().unwrap(),
                vec![(tx, 31)],
                "{cfg:?} cycle {cycle}"
            );
            assert_eq!(pool.read_u64(a), 9);
        }
        tm.rollback_prepared(tx).unwrap();
        assert_eq!(pool.read_u64(a), 0);
    }
}

#[test]
fn checkpoint_leaves_in_doubt_records_alone() {
    let cfg = RewindConfig::batch(); // no-force: checkpoints clear the log
    let pool = pool();
    let tm = TransactionManager::create(Arc::clone(&pool), cfg).unwrap();
    let a = alloc_words(&pool, 4);
    let tx = tm.begin();
    tm.write_u64(tx, a.word(0), 3).unwrap();
    tm.prepare(tx, 77).unwrap();
    let before = tm.log_len();
    tm.run(|t| t.write_u64(a.word(1), 4)).unwrap();
    tm.checkpoint().unwrap();
    // The finished transaction's records are gone; the in-doubt ones stay.
    assert!(tm.log_len() <= before);
    assert_eq!(tm.in_doubt().unwrap(), vec![(tx, 77)]);
    pool.power_cycle();
    let tm = TransactionManager::open(Arc::clone(&pool), cfg).unwrap();
    assert_eq!(tm.in_doubt().unwrap(), vec![(tx, 77)]);
    tm.commit_prepared(tx).unwrap();
    assert_eq!(pool.read_u64(a.word(0)), 3);
    assert_eq!(pool.read_u64(a.word(1)), 4);
}

#[test]
fn clean_shutdown_preserves_in_doubt_transactions() {
    let cfg = RewindConfig::batch();
    let pool = pool();
    let tm = TransactionManager::create(Arc::clone(&pool), cfg).unwrap();
    let a = alloc_words(&pool, 2);
    let tx = tm.begin();
    tm.write_u64(tx, a, 5).unwrap();
    tm.prepare(tx, 12).unwrap();
    tm.shutdown().unwrap();
    pool.power_cycle();
    // Clean attach: no recovery pass, but the in-doubt transaction is
    // re-registered from the log scan and can still be resolved.
    let tm = TransactionManager::open(Arc::clone(&pool), cfg).unwrap();
    assert!(tm.last_recovery().is_none(), "clean attach skips recovery");
    assert_eq!(tm.in_doubt().unwrap(), vec![(tx, 12)]);
    tm.commit_prepared(tx).unwrap();
    assert_eq!(pool.read_u64(a), 5);
}
