//! Regression tests for the de-quadratized commit path: per-commit NVM cost
//! must not grow with the number of unrelated live log records, clearing an
//! emptied bucket must unlink it without walking the ADLL, and the
//! registry-driven checkpoint must keep clearing finished transactions even
//! after the registries were rebuilt by recovery.

use rewind_core::log::RecoverableLog;
use rewind_core::{LogRecord, Policy, RewindConfig, TransactionManager};
use rewind_nvm::{NvmPool, PAddr, PoolConfig};
use std::sync::Arc;

fn pool() -> Arc<NvmPool> {
    NvmPool::new(PoolConfig::with_capacity(16 << 20))
}

/// Mean pool reads charged per begin/write×8/commit cycle under the force
/// policy, with `live` parked transactions of 8 records each sitting in the
/// log as skip records.
fn reads_per_commit(live: usize) -> u64 {
    let cfg = RewindConfig::optimized().policy(Policy::Force);
    let p = pool();
    let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
    let data = p.alloc(8 * 4096).unwrap();
    let mut parked = 1024u64;
    for _ in 0..live {
        let t = tm.begin();
        for _ in 0..8 {
            tm.write_u64(t, data.word(parked % 4096), parked + 1)
                .unwrap();
            parked += 1;
        }
    }
    let iters = 10u64;
    let before = p.stats();
    for i in 0..iters {
        let t = tm.begin();
        for op in 0..8 {
            tm.write_u64(t, data.word((i * 8 + op) % 1024), i * 8 + op + 1)
                .unwrap();
        }
        tm.commit(t).unwrap();
    }
    p.stats().since(&before).reads / iters
}

#[test]
fn per_commit_reads_flat_as_unrelated_live_records_grow() {
    let small = reads_per_commit(6); // 48 unrelated live records
    let big = reads_per_commit(60); // 480 unrelated live records (10x)
                                    // Commit cost must depend only on the committing transaction's own
                                    // record count. A small additive margin absorbs bucket-boundary noise;
                                    // the pre-registry code read every live record and blew straight past it
                                    // (hundreds of extra reads at this scale).
    assert!(
        big <= small + small / 4 + 8,
        "per-commit reads must not scale with unrelated live records: {small} -> {big}"
    );
}

/// Pool reads charged while clearing all eight records of the first bucket
/// (which empties and unlinks it) in a log that holds `extra_buckets` more
/// buckets behind it.
fn reads_to_clear_first_bucket(extra_buckets: usize) -> u64 {
    let p = pool();
    let cfg = RewindConfig::optimized().bucket_size(8);
    let log = RecoverableLog::create(Arc::clone(&p), &cfg).unwrap();
    let mut slots = Vec::new();
    for i in 0..(8 * (extra_buckets + 2)) as u64 {
        let (_, slot) = log
            .append(&LogRecord::update(i, 1, PAddr::new(0x100), i, i + 1))
            .unwrap();
        slots.push(slot);
    }
    let before = p.stats();
    for s in &slots[..8] {
        log.clear_slot(*s).unwrap();
    }
    p.stats().since(&before).reads
}

#[test]
fn clearing_an_empty_bucket_does_not_iterate_the_adll() {
    let short = reads_to_clear_first_bucket(2);
    let long = reads_to_clear_first_bucket(64);
    // The empty-bucket unlink goes through the stored ADLL-node back-pointer,
    // so its cost is exactly independent of how long the list is. The old
    // `adll.iter().find(...)` search read two words per node walked.
    assert_eq!(
        short, long,
        "empty-bucket unlink cost must be independent of log length"
    );
}

#[test]
fn checkpoint_after_recovery_still_clears_finished_transactions() {
    // Recovery rebuilds the slot registries from its analysis scan and (under
    // one-layer no-force) retains the finished entries, so a later checkpoint
    // clears their records without rescanning. This guards the behaviour the
    // old full-scan checkpoint provided for free.
    let cfg = RewindConfig::optimized(); // one-layer, no-force
    let p = pool();
    let data = p.alloc(64).unwrap();
    {
        let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
        tm.run(|tx| {
            for i in 0..4 {
                tx.write_u64(data.word(i), 10 + i)?;
            }
            Ok(())
        })
        .unwrap();
        // Crash with the winner's records still in the log (no checkpoint).
    }
    p.power_cycle();
    let tm = TransactionManager::open(Arc::clone(&p), cfg).unwrap();
    assert!(tm.log_len() > 0, "winner records survive no-force recovery");
    tm.checkpoint().unwrap();
    assert_eq!(tm.log_len(), 0, "checkpoint clears recovered winners");
    for i in 0..4 {
        assert_eq!(p.read_u64(data.word(i)), 10 + i);
    }
    // The manager stays fully usable.
    tm.run(|tx| tx.write_u64(data.word(0), 99)).unwrap();
    tm.checkpoint().unwrap();
    assert_eq!(tm.log_len(), 0);
    assert_eq!(p.read_u64(data.word(0)), 99);
}

#[test]
fn clean_attach_registers_finished_leftovers_for_checkpoint() {
    // A transaction that finishes after the shutdown checkpoint's cut-off
    // leaves its records in the log across a clean attach. The clean-attach
    // scan must register them so the next checkpoint still clears them (the
    // registry-driven checkpoint no longer rediscovers them by full scan).
    let cfg = RewindConfig::optimized(); // one-layer, no-force
    let p = pool();
    let data = p.alloc(64).unwrap();
    {
        let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
        tm.run(|tx| tx.write_u64(data, 7)).unwrap();
        // Mark the pool clean without the manager's shutdown checkpoint,
        // like a commit racing shutdown: finished records stay in the log.
        p.mark_clean_shutdown();
    }
    p.power_cycle();
    let tm = TransactionManager::open(Arc::clone(&p), cfg).unwrap();
    assert_eq!(tm.stats().recoveries, 0, "clean path must skip recovery");
    assert!(tm.log_len() > 0, "leftover records visible after attach");
    tm.checkpoint().unwrap();
    assert_eq!(tm.log_len(), 0, "checkpoint clears finished leftovers");
    assert_eq!(p.read_u64(data), 7);
}

#[test]
fn lifetime_append_counter_survives_power_cycle() {
    // `appended` used to silently reset to 0 on attach; it is now rebuilt
    // from the recovery scan (the live-record count is the best possible
    // post-crash reconstruction).
    let cfg = RewindConfig::optimized();
    let p = pool();
    let header;
    {
        let log = RecoverableLog::create(Arc::clone(&p), &cfg).unwrap();
        for i in 0..10 {
            log.append(&LogRecord::update(i, 1, PAddr::new(0x100), i, i + 1))
                .unwrap();
        }
        assert_eq!(log.appended(), 10);
        header = log.header();
    }
    p.power_cycle();
    let log = RecoverableLog::attach(Arc::clone(&p), &cfg, header).unwrap();
    assert_eq!(
        log.appended(),
        10,
        "lifetime stats must survive a power cycle"
    );
    log.append(&LogRecord::update(100, 1, PAddr::new(0x100), 0, 1))
        .unwrap();
    assert_eq!(log.appended(), 11);
}

#[test]
fn delete_heavy_workload_triggers_auto_checkpoints() {
    // `log_delete` now feeds `maybe_auto_checkpoint` like `log_update`, so a
    // delete-only no-force workload cannot grow the log without bound.
    let p = pool();
    let cfg = RewindConfig::optimized().checkpoint_every(50);
    let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
    for _ in 0..40u64 {
        let block = p.alloc(64).unwrap();
        tm.run(|tx| tx.defer_free(block, 64)).unwrap();
    }
    assert!(
        tm.stats().checkpoints >= 1,
        "delete-only workload must auto-checkpoint, got {}",
        tm.stats().checkpoints
    );
    assert!(tm.log_len() < 120, "log stays bounded: {}", tm.log_len());
}
