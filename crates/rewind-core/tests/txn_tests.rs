//! Transaction manager tests: commit, rollback, recovery and checkpointing
//! across all REWIND configurations ({one,two}-layer × {force,no-force} ×
//! {Simple,Optimized,Batch}).

use rewind_core::{LogLayers, LogStructure, Policy, RewindConfig, RewindError, TransactionManager};
use rewind_nvm::{NvmPool, PAddr, PoolConfig};
use std::sync::Arc;

/// All twelve configuration combinations.
fn all_configs() -> Vec<RewindConfig> {
    let mut out = Vec::new();
    for layers in [LogLayers::OneLayer, LogLayers::TwoLayer] {
        for policy in [Policy::NoForce, Policy::Force] {
            for structure in [
                LogStructure::Simple,
                LogStructure::Optimized,
                LogStructure::Batch,
            ] {
                out.push(
                    RewindConfig {
                        structure,
                        ..RewindConfig::batch()
                    }
                    .layers(layers)
                    .policy(policy)
                    .bucket_size(16)
                    .group_size(4),
                );
            }
        }
    }
    out
}

/// The four headline configurations of the paper (with the Batch structure).
fn headline_configs() -> Vec<RewindConfig> {
    vec![
        RewindConfig::batch(),
        RewindConfig::batch().policy(Policy::Force),
        RewindConfig::batch().layers(LogLayers::TwoLayer),
        RewindConfig::batch()
            .layers(LogLayers::TwoLayer)
            .policy(Policy::Force),
    ]
}

fn pool() -> Arc<NvmPool> {
    NvmPool::new(PoolConfig::small())
}

/// Allocates `n` persistent words initialised (durably) to zero.
fn alloc_words(pool: &Arc<NvmPool>, n: u64) -> PAddr {
    let a = pool.alloc((n * 8) as usize).unwrap();
    for i in 0..n {
        pool.write_u64_nt(a.word(i), 0);
    }
    pool.sfence();
    a
}

#[test]
fn committed_updates_are_applied_in_every_configuration() {
    for cfg in all_configs() {
        let p = pool();
        let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
        let data = alloc_words(&p, 8);
        tm.run(|tx| {
            for i in 0..8 {
                tx.write_u64(data.word(i), 100 + i)?;
            }
            Ok(())
        })
        .unwrap();
        for i in 0..8 {
            assert_eq!(p.read_u64(data.word(i)), 100 + i, "cfg {cfg:?}");
        }
        let s = tm.stats();
        assert_eq!(s.begun, 1);
        assert_eq!(s.committed, 1);
        assert_eq!(s.rolled_back, 0);
    }
}

#[test]
fn rollback_restores_old_values_in_every_configuration() {
    for cfg in all_configs() {
        let p = pool();
        let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
        let data = alloc_words(&p, 4);
        // Establish committed baseline values.
        tm.run(|tx| {
            for i in 0..4 {
                tx.write_u64(data.word(i), 10 + i)?;
            }
            Ok(())
        })
        .unwrap();
        // A failing transaction overwrites them and then aborts.
        let err = tm.run(|tx| {
            for i in 0..4 {
                tx.write_u64(data.word(i), 900 + i)?;
            }
            tx.abort::<()>("intentional")
        });
        assert!(matches!(err, Err(RewindError::Aborted(_))));
        for i in 0..4 {
            assert_eq!(p.read_u64(data.word(i)), 10 + i, "cfg {cfg:?}");
        }
        assert_eq!(tm.stats().rolled_back, 1);
    }
}

#[test]
fn explicit_begin_log_commit_mirrors_listing_2() {
    let p = pool();
    let tm = TransactionManager::create(Arc::clone(&p), RewindConfig::batch()).unwrap();
    let data = alloc_words(&p, 2);
    // The expanded form: log first, then the store, then commit.
    let tid = tm.begin();
    tm.log_update(tid, data.word(0), 0, 7).unwrap();
    p.write_u64(data.word(0), 7);
    tm.log_update(tid, data.word(1), 0, 8).unwrap();
    p.write_u64(data.word(1), 8);
    tm.commit(tid).unwrap();
    assert_eq!(p.read_u64(data.word(0)), 7);
    assert_eq!(p.read_u64(data.word(1)), 8);
}

#[test]
fn operations_on_unknown_or_finished_transactions_are_rejected() {
    let p = pool();
    let tm = TransactionManager::create(Arc::clone(&p), RewindConfig::batch()).unwrap();
    let data = alloc_words(&p, 1);
    assert!(matches!(
        tm.log_update(999, data, 0, 1),
        Err(RewindError::UnknownTransaction(999))
    ));
    let t = tm.begin();
    tm.write_u64(t, data, 5).unwrap();
    tm.commit(t).unwrap();
    assert!(tm.commit(t).is_err());
    assert!(tm.write_u64(t, data, 6).is_err());
    assert!(tm.rollback(t).is_err());
}

#[test]
fn force_policy_clears_log_at_commit_noforce_keeps_it() {
    for structure in [
        LogStructure::Simple,
        LogStructure::Optimized,
        LogStructure::Batch,
    ] {
        let base = RewindConfig {
            structure,
            ..RewindConfig::batch()
        };
        // Force: log empty right after commit.
        let p = pool();
        let tm = TransactionManager::create(Arc::clone(&p), base.policy(Policy::Force)).unwrap();
        let data = alloc_words(&p, 4);
        tm.run(|tx| {
            for i in 0..4 {
                tx.write_u64(data.word(i), i + 1)?;
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(
            tm.log_len(),
            0,
            "force policy clears at commit ({structure:?})"
        );

        // No-force: records remain until a checkpoint.
        let p = pool();
        let tm = TransactionManager::create(Arc::clone(&p), base.policy(Policy::NoForce)).unwrap();
        let data = alloc_words(&p, 4);
        tm.run(|tx| {
            for i in 0..4 {
                tx.write_u64(data.word(i), i + 1)?;
            }
            Ok(())
        })
        .unwrap();
        assert!(tm.log_len() > 0, "no-force keeps records ({structure:?})");
        let removed = tm.checkpoint().unwrap();
        assert!(removed >= 5, "checkpoint clears them ({structure:?})");
        assert_eq!(tm.log_len(), 0);
    }
}

#[test]
fn uncommitted_transaction_is_undone_by_recovery() {
    for cfg in all_configs() {
        let p = pool();
        let data;
        {
            let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
            data = alloc_words(&p, 4);
            // A committed transaction sets the baseline.
            tm.run(|tx| {
                for i in 0..4 {
                    tx.write_u64(data.word(i), 10 + i)?;
                }
                Ok(())
            })
            .unwrap();
            // Under no-force the baseline lives in the cache; a checkpoint
            // makes it durable (force already forced it).
            if cfg.policy == Policy::NoForce {
                tm.checkpoint().unwrap();
            }
            // An in-flight transaction scribbles over it and never commits.
            let t = tm.begin();
            for i in 0..4 {
                tm.write_u64(t, data.word(i), 777 + i).unwrap();
            }
            // Crash without commit.
        }
        p.power_cycle();
        let tm = TransactionManager::open(Arc::clone(&p), cfg).unwrap();
        for i in 0..4 {
            assert_eq!(
                p.read_u64(data.word(i)),
                10 + i,
                "cfg {cfg:?}: loser transaction must be rolled back"
            );
        }
        // Recovery leaves a working manager behind.
        tm.run(|tx| {
            tx.write_u64(data.word(0), 42)?;
            Ok(())
        })
        .unwrap();
        assert_eq!(p.read_u64(data.word(0)), 42);
    }
}

#[test]
fn committed_transaction_survives_crash_before_checkpoint() {
    // The redo phase (no-force) must reinstall committed-but-unflushed data.
    for cfg in headline_configs() {
        let p = pool();
        let data;
        {
            let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
            data = alloc_words(&p, 4);
            tm.run(|tx| {
                for i in 0..4 {
                    tx.write_u64(data.word(i), 55 + i)?;
                }
                Ok(())
            })
            .unwrap();
            // No checkpoint, no clean shutdown: crash now.
        }
        p.power_cycle();
        let _tm = TransactionManager::open(Arc::clone(&p), cfg).unwrap();
        for i in 0..4 {
            assert_eq!(
                p.read_u64(data.word(i)),
                55 + i,
                "cfg {cfg:?}: committed data lost"
            );
        }
    }
}

#[test]
fn mixed_winners_and_losers_recover_correctly() {
    for cfg in headline_configs() {
        let p = pool();
        let data;
        {
            let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
            data = alloc_words(&p, 10);
            // Five committed transactions, interleaved with one loser.
            let loser = tm.begin();
            for i in 0..5u64 {
                tm.write_u64(loser, data.word(5 + i), 1000 + i).unwrap();
                tm.run(|tx| {
                    tx.write_u64(data.word(i), 100 + i)?;
                    Ok(())
                })
                .unwrap();
            }
        }
        p.power_cycle();
        let _tm = TransactionManager::open(Arc::clone(&p), cfg).unwrap();
        for i in 0..5u64 {
            assert_eq!(p.read_u64(data.word(i)), 100 + i, "winner lost ({cfg:?})");
            assert_eq!(
                p.read_u64(data.word(5 + i)),
                0,
                "loser not undone ({cfg:?})"
            );
        }
    }
}

#[test]
fn recovery_is_idempotent_and_survives_repeated_crashes() {
    let cfg = RewindConfig::batch();
    let p = pool();
    let data;
    {
        let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
        data = alloc_words(&p, 4);
        tm.run(|tx| {
            for i in 0..4 {
                tx.write_u64(data.word(i), 10 + i)?;
            }
            Ok(())
        })
        .unwrap();
        tm.checkpoint().unwrap();
        let t = tm.begin();
        for i in 0..4 {
            tm.write_u64(t, data.word(i), 999).unwrap();
        }
    }
    // Crash, then crash again in the middle of recovery, several times.
    for crash_during_recovery in [3u64, 9, 27, 81] {
        p.power_cycle();
        p.crash_injector().arm_after(crash_during_recovery);
        let _ = TransactionManager::open(Arc::clone(&p), cfg);
    }
    p.power_cycle();
    let _tm = TransactionManager::open(Arc::clone(&p), cfg).unwrap();
    for i in 0..4 {
        assert_eq!(p.read_u64(data.word(i)), 10 + i);
    }
}

#[test]
fn crash_sweep_through_commit_gives_all_or_nothing() {
    // For every crash point inside a small transaction's lifetime the
    // recovered state must be either the complete transaction or none of it.
    for cfg in [
        RewindConfig::batch(),
        RewindConfig::batch().policy(Policy::Force),
        RewindConfig::optimized(),
        RewindConfig::simple(),
    ] {
        for crash_at in (1..=80u64).step_by(3) {
            let p = pool();
            let data;
            {
                let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
                data = alloc_words(&p, 3);
                p.crash_injector().arm_after(crash_at);
                let _ = tm.run(|tx| {
                    tx.write_u64(data.word(0), 1)?;
                    tx.write_u64(data.word(1), 2)?;
                    tx.write_u64(data.word(2), 3)?;
                    Ok(())
                });
            }
            p.power_cycle();
            let _tm = TransactionManager::open(Arc::clone(&p), cfg).unwrap();
            let vals: Vec<u64> = (0..3).map(|i| p.read_u64(data.word(i))).collect();
            assert!(
                vals == vec![1, 2, 3] || vals == vec![0, 0, 0],
                "cfg {cfg:?} crash {crash_at}: partial state {vals:?}"
            );
        }
    }
}

#[test]
fn deferred_deallocation_happens_only_after_clearing() {
    let p = pool();
    let cfg = RewindConfig::batch().policy(Policy::Force);
    let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
    let block = p.alloc(64).unwrap();
    let frees_before = p.stats().frees;
    tm.run(|tx| {
        tx.write_u64(block, 1)?;
        tx.defer_free(block, 64)?;
        Ok(())
    })
    .unwrap();
    // Under force the records are cleared at commit, so the free happened.
    assert!(p.stats().frees > frees_before);
}

#[test]
fn clean_shutdown_skips_recovery_and_preserves_data() {
    let cfg = RewindConfig::batch();
    let p = pool();
    let data;
    {
        let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
        data = alloc_words(&p, 4);
        tm.run(|tx| {
            for i in 0..4 {
                tx.write_u64(data.word(i), 500 + i)?;
            }
            Ok(())
        })
        .unwrap();
        tm.shutdown().unwrap();
    }
    p.power_cycle();
    let tm = TransactionManager::open(Arc::clone(&p), cfg).unwrap();
    assert_eq!(
        tm.stats().recoveries,
        0,
        "clean shutdown must skip recovery"
    );
    for i in 0..4 {
        assert_eq!(p.read_u64(data.word(i)), 500 + i);
    }
    // The manager is immediately usable for new transactions.
    tm.run(|tx| {
        tx.write_u64(data.word(0), 1)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(p.read_u64(data.word(0)), 1);
}

#[test]
fn opening_with_mismatched_configuration_fails() {
    let p = pool();
    {
        let tm = TransactionManager::create(Arc::clone(&p), RewindConfig::batch()).unwrap();
        tm.shutdown().unwrap();
    }
    let err = TransactionManager::open(Arc::clone(&p), RewindConfig::simple());
    assert!(matches!(err, Err(RewindError::ConfigMismatch(_))));
}

#[test]
fn automatic_checkpoints_fire_by_record_count() {
    let p = pool();
    let cfg = RewindConfig::batch().checkpoint_every(50);
    let tm = TransactionManager::create(Arc::clone(&p), cfg).unwrap();
    let data = alloc_words(&p, 1);
    for round in 0..20u64 {
        tm.run(|tx| {
            for _ in 0..5 {
                tx.write_u64(data, round + 1)?;
                tx.write_u64(data, round + 2)?;
            }
            Ok(())
        })
        .unwrap();
    }
    assert!(
        tm.stats().checkpoints >= 2,
        "expected automatic checkpoints, got {}",
        tm.stats().checkpoints
    );
    assert!(tm.log_len() < 200);
}

#[test]
fn concurrent_transactions_from_multiple_threads() {
    for cfg in [
        RewindConfig::batch(),
        RewindConfig::batch().policy(Policy::Force),
        RewindConfig::batch().layers(LogLayers::TwoLayer),
    ] {
        let p = NvmPool::new(PoolConfig::with_capacity(16 << 20));
        let tm = Arc::new(TransactionManager::create(Arc::clone(&p), cfg).unwrap());
        let n_threads = 4u64;
        let per_thread = 50u64;
        let data = alloc_words(&p, n_threads * per_thread);
        let mut handles = Vec::new();
        for t in 0..n_threads {
            let tm = Arc::clone(&tm);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_thread {
                    let idx = t * per_thread + i;
                    tm.run(|tx| {
                        tx.write_u64(data.word(idx), idx + 1)?;
                        Ok(())
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for idx in 0..n_threads * per_thread {
            assert_eq!(p.read_u64(data.word(idx)), idx + 1, "cfg {cfg:?}");
        }
        assert_eq!(tm.stats().committed, n_threads * per_thread);
    }
}

#[test]
fn two_layer_rollback_touches_fewer_records_than_one_layer_scan() {
    // Sanity check of the paper's motivation for two-layer logging: with many
    // interleaved records, rolling back one transaction through the AVL index
    // reads far fewer records than the full log scan of the one-layer log.
    let p = pool();
    let tm2 = TransactionManager::create(
        Arc::clone(&p),
        RewindConfig::batch().layers(LogLayers::TwoLayer),
    )
    .unwrap();
    let data = alloc_words(&p, 64);
    // One victim transaction interleaved with lots of other work.
    let victim = tm2.begin();
    tm2.write_u64(victim, data.word(0), 1).unwrap();
    for i in 1..60u64 {
        let t = tm2.begin();
        tm2.write_u64(t, data.word(i), i).unwrap();
        tm2.commit(t).unwrap();
    }
    tm2.write_u64(victim, data.word(63), 2).unwrap();
    // Rolling back the victim must only undo its own two updates.
    tm2.rollback(victim).unwrap();
    assert_eq!(p.read_u64(data.word(0)), 0);
    assert_eq!(p.read_u64(data.word(63)), 0);
    for i in 1..60u64 {
        assert_eq!(p.read_u64(data.word(i)), i, "other transactions untouched");
    }
}

#[test]
fn read_only_finish_writes_nothing_in_every_configuration() {
    for cfg in all_configs() {
        let pool = pool();
        let tm = TransactionManager::create(Arc::clone(&pool), cfg).unwrap();
        let addr = alloc_words(&pool, 4);
        tm.run(|tx| tx.write_u64(addr, 7)).unwrap();

        let records_before = tm.stats().records_logged;
        let tx = tm.begin();
        let _ = pool.read_u64(addr); // a "read" — reads are never logged
        tm.finish_read_only(tx).unwrap();

        let stats = tm.stats();
        assert_eq!(stats.read_only_finished, 1, "{cfg:?}");
        assert_eq!(
            stats.records_logged, records_before,
            "{cfg:?}: read-only finish must log nothing (no END, no fence)"
        );
        // The transaction is gone: any further use is rejected.
        assert!(matches!(
            tm.commit(tx),
            Err(RewindError::UnknownTransaction(_))
        ));
        // The manager keeps working.
        tm.run(|tx| tx.write_u64(addr, 8)).unwrap();
        assert_eq!(pool.read_u64(addr), 8);
    }
}

#[test]
fn read_only_finish_rejects_transactions_with_records() {
    for cfg in all_configs() {
        let pool = pool();
        let tm = TransactionManager::create(Arc::clone(&pool), cfg).unwrap();
        let addr = alloc_words(&pool, 4);
        let tx = tm.begin();
        tm.write_u64(tx, addr, 5).unwrap();
        assert!(
            matches!(
                tm.finish_read_only(tx),
                Err(RewindError::InvalidTransactionState { .. })
            ),
            "{cfg:?}: a writer must not take the read-only path"
        );
        // The rejection left the transaction usable: normal rollback works.
        tm.rollback(tx).unwrap();
        assert_eq!(pool.read_u64(addr), 0, "{cfg:?}");
    }
}
